//! Bit-exact 64-byte encoding of morphable counter lines.
//!
//! The layouts realize Fig 8 and Fig 13 of the paper. The paper draws the
//! 7-bit format field between the major counter and the minors; we place
//! the family bit first so that a decoder can always find it at bit 0 —
//! an equivalent-size representation choice (documented in DESIGN.md):
//!
//! ```text
//! ZCC     [family=0:1][ctr-sz:6][major:57][bit-vector:128][non-zero ctrs:256][MAC:64]
//! Uniform [family=0:1][ctr-sz=3:6][major:57][128 x 3-bit ctrs:384][MAC:64]
//! MCR     [family=1:1][major:49][base-1:7][base-2:7][64 x 3-bit:192][64 x 3-bit:192][MAC:64]
//! ```
//!
//! Every layout is exactly 512 bits.

use super::super::bits::{get_bits, set_bits};
use super::{zcc_width, MorphFormat, MorphLine, MorphMode, MORPH_ARITY};
use crate::error::CodecError;
use crate::{CACHELINE_BITS, CACHELINE_BYTES, LINE_MAC_BITS};

const MAC_OFFSET: usize = CACHELINE_BITS - LINE_MAC_BITS;

/// The `ctr-sz` value that marks the uniform 128 × 3-bit format
/// (`zcc_width` never yields 3, so the encoding is unambiguous).
const UNIFORM_CTR_SZ: u64 = 3;

/// Encodes `line` into its 64-byte image. When `with_mac` is false the MAC
/// field is left zero (the byte string a MAC is computed over).
pub fn encode(line: &MorphLine, with_mac: bool) -> [u8; CACHELINE_BYTES] {
    let mut image = [0u8; CACHELINE_BYTES];
    match line.format {
        MorphFormat::Zcc => {
            let nonzero = line.values.iter().filter(|&&v| v != 0).count();
            let Some(width) = zcc_width(nonzero) else {
                // The ZCC format invariant (at most 64 non-zero minors) is
                // maintained by every increment path; encoding a violating
                // line must fail loudly, not emit a corrupt image.
                panic!("ZCC line with {nonzero} non-zero minors cannot be encoded");
            };
            let width = width as usize;
            set_bits(&mut image, 0, 1, 0);
            set_bits(&mut image, 1, 6, width as u64);
            assert!(line.major < 1 << 57, "ZCC major exceeds 57 bits");
            set_bits(&mut image, 7, 57, line.major);
            // Bit-vector of non-zero slots.
            for (slot, &v) in line.values.iter().enumerate() {
                if v != 0 {
                    set_bits(&mut image, 64 + slot, 1, 1);
                }
            }
            // Non-zero counters packed in slot order.
            let mut bit = 192;
            for &v in line.values.iter().filter(|&&v| v != 0) {
                set_bits(&mut image, bit, width, v as u64);
                bit += width;
            }
            debug_assert!(bit <= 448, "value field overran: {bit}");
        }
        MorphFormat::Uniform => {
            set_bits(&mut image, 0, 1, 0);
            set_bits(&mut image, 1, 6, UNIFORM_CTR_SZ);
            assert!(line.major < 1 << 57, "uniform major exceeds 57 bits");
            set_bits(&mut image, 7, 57, line.major);
            for (slot, &v) in line.values.iter().enumerate() {
                set_bits(&mut image, 64 + 3 * slot, 3, v as u64);
            }
        }
        MorphFormat::Mcr => {
            set_bits(&mut image, 0, 1, 1);
            assert!(line.major < 1 << 49, "MCR major exceeds 49 bits");
            set_bits(&mut image, 1, 49, line.major);
            set_bits(&mut image, 50, 7, line.bases[0]);
            set_bits(&mut image, 57, 7, line.bases[1]);
            for (slot, &v) in line.values.iter().enumerate() {
                set_bits(&mut image, 64 + 3 * slot, 3, v as u64);
            }
        }
    }
    if with_mac {
        set_bits(&mut image, MAC_OFFSET, LINE_MAC_BITS, line.mac);
    }
    image
}

/// Decodes a 64-byte image back into a line (the `mode` is configuration,
/// not stored in the image).
///
/// # Errors
///
/// Returns [`CodecError`] if the image is not a well-formed morphable line
/// (e.g. the stored `ctr-sz` disagrees with the bit-vector population
/// count). Images only ever come from [`encode`], so a decode failure means
/// the stored bytes were corrupted in flight — a torn snapshot write, bit
/// rot, or tampering below the MAC layer.
pub fn decode(mode: MorphMode, image: &[u8; CACHELINE_BYTES]) -> Result<MorphLine, CodecError> {
    let mut line = MorphLine::new(mode);
    line.mac = get_bits(image, MAC_OFFSET, LINE_MAC_BITS);
    if get_bits(image, 0, 1) == 1 {
        line.format = MorphFormat::Mcr;
        line.major = get_bits(image, 1, 49);
        line.bases = [get_bits(image, 50, 7), get_bits(image, 57, 7)];
        for slot in 0..MORPH_ARITY {
            line.values[slot] = get_bits(image, 64 + 3 * slot, 3) as u16;
        }
        return Ok(line);
    }
    let ctr_sz = get_bits(image, 1, 6);
    line.major = get_bits(image, 7, 57);
    if ctr_sz == UNIFORM_CTR_SZ {
        line.format = MorphFormat::Uniform;
        for slot in 0..MORPH_ARITY {
            line.values[slot] = get_bits(image, 64 + 3 * slot, 3) as u16;
        }
        return Ok(line);
    }
    line.format = MorphFormat::Zcc;
    let mut nonzero_slots = Vec::new();
    for slot in 0..MORPH_ARITY {
        if get_bits(image, 64 + slot, 1) == 1 {
            nonzero_slots.push(slot);
        }
    }
    let width = zcc_width(nonzero_slots.len())
        .ok_or(CodecError::TooManyNonZero { nonzero: nonzero_slots.len() })? as usize;
    if width as u64 != ctr_sz {
        return Err(CodecError::CtrSizeMismatch { stored: ctr_sz, derived: width as u64 });
    }
    let mut bit = 192;
    for slot in nonzero_slots {
        line.values[slot] = get_bits(image, bit, width) as u16;
        bit += width;
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CounterLine, IncrementOutcome};

    fn roundtrip(line: &MorphLine) {
        let decoded = decode(line.mode(), &line.encode()).unwrap();
        assert_eq!(&decoded, line);
    }

    #[test]
    fn roundtrip_fresh_line() {
        roundtrip(&MorphLine::new(MorphMode::ZccRebase));
    }

    #[test]
    fn roundtrip_sparse_zcc() {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        for slot in [0usize, 17, 45, 99, 127] {
            for _ in 0..(slot + 1) {
                line.increment(slot);
            }
        }
        line.set_mac(0xfeed_face_cafe_beef);
        roundtrip(&line);
    }

    #[test]
    fn roundtrip_every_zcc_width() {
        // Exercise each width bucket boundary.
        for n in [1usize, 16, 17, 32, 33, 36, 37, 42, 43, 51, 52, 64] {
            let mut line = MorphLine::new(MorphMode::ZccRebase);
            for slot in 0..n {
                line.increment(slot);
            }
            assert_eq!(line.used_counters(), n);
            roundtrip(&line);
        }
    }

    #[test]
    fn roundtrip_uniform() {
        let mut line = MorphLine::new(MorphMode::ZccOnly);
        for slot in 0..128 {
            line.increment(slot);
        }
        assert_eq!(line.format(), MorphFormat::Uniform);
        line.set_mac(7);
        roundtrip(&line);
    }

    #[test]
    fn roundtrip_mcr_with_rebased_bases() {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        for slot in 0..128 {
            line.increment(slot);
        }
        assert_eq!(line.format(), MorphFormat::Mcr);
        // Force a rebase so the bases are non-trivial.
        for _ in 0..7 {
            line.increment(3);
        }
        assert!(line.bases()[0] > 0);
        roundtrip(&line);
    }

    #[test]
    fn all_formats_fit_512_bits() {
        // encode() would panic via set_bits if any field overran the line;
        // drive a line through all three formats to prove the layouts fit.
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        let _ = line.encode();
        for slot in 0..128 {
            for _ in 0..5 {
                line.increment(slot);
            }
            let _ = line.encode();
        }
        assert_eq!(line.format(), MorphFormat::Mcr);
    }

    #[test]
    fn mac_field_occupies_final_eight_bytes() {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        line.increment(0);
        line.set_mac(u64::MAX);
        let image = line.encode();
        assert_eq!(image[56..64], [0xff; 8]);
        let body = line.encode_for_mac();
        assert_eq!(body[56..64], [0u8; 8]);
        assert_eq!(image[..56], body[..56]);
    }

    #[test]
    fn decode_rejects_inconsistent_ctr_sz() {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        line.increment(0);
        let mut image = line.encode();
        // Corrupt the ctr-sz field (bits 1..7) to 5.
        crate::counters::bits::set_bits(&mut image, 1, 6, 5);
        assert_eq!(
            decode(MorphMode::ZccRebase, &image),
            Err(CodecError::CtrSizeMismatch { stored: 5, derived: 16 })
        );
    }

    #[test]
    fn decode_rejects_overfull_bit_vectors_with_a_typed_error() {
        let mut image = MorphLine::new(MorphMode::ZccRebase).encode();
        // Mark 65 counters non-zero: no ZCC width schedule covers that.
        for slot in 0..65 {
            crate::counters::bits::set_bits(&mut image, 64 + slot, 1, 1);
        }
        assert_eq!(
            decode(MorphMode::ZccRebase, &image),
            Err(CodecError::TooManyNonZero { nonzero: 65 })
        );
    }

    #[test]
    fn encoded_formats_are_distinguishable() {
        let zcc = MorphLine::new(MorphMode::ZccRebase).encode();
        let mut dense = MorphLine::new(MorphMode::ZccRebase);
        for slot in 0..128 {
            dense.increment(slot);
        }
        let mcr = dense.encode();
        assert_eq!(zcc[0] & 1, 0);
        assert_eq!(mcr[0] & 1, 1);
        let mut uniform_line = MorphLine::new(MorphMode::ZccOnly);
        for slot in 0..128 {
            uniform_line.increment(slot);
        }
        let uniform = uniform_line.encode();
        assert_eq!(uniform[0] & 1, 0);
        assert_eq!((uniform[0] >> 1) & 0x3f, 3);
    }

    #[test]
    fn increments_after_roundtrip_behave_identically() {
        let mut a = MorphLine::new(MorphMode::ZccRebase);
        for slot in 0..70 {
            a.increment(slot % 128);
        }
        let mut b = decode(MorphMode::ZccRebase, &a.encode()).unwrap();
        for slot in [0usize, 64, 127, 5] {
            let oa = a.increment(slot);
            let ob = b.increment(slot);
            assert_eq!(oa, ob);
            assert_eq!(a, b);
            let _ = matches!(oa, IncrementOutcome::Ok);
        }
    }
}
