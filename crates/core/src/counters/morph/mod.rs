//! Morphable Counters (MorphCtr-128): the paper's primary contribution
//! (§III–§IV).
//!
//! A morphable line packs **128** counters into one 64-byte cacheline —
//! twice the density of the best split-counter design — by *morphing*
//! between representations based on how the counters are used:
//!
//! - **ZCC** (*Zero Counter Compression*, §III-B): when ≤ 64 of the 128
//!   counters are non-zero, a 128-bit bit-vector tracks which are non-zero
//!   and the remaining 256 bits are distributed among only those counters.
//!   Few used counters ⇒ wide, overflow-tolerant counters
//!   (≤16 → 16 b, ≤32 → 8 b, ≤36 → 7 b, ≤42 → 6 b, ≤51 → 5 b, ≤64 → 4 b).
//! - **Uniform** (§III-B1): 128 × 3-bit minors, used by the ZCC-only
//!   configuration when more than 64 counters are non-zero.
//! - **MCR** (*Minor Counter Rebasing*, §IV): in the full configuration,
//!   dense usage switches to a double-base format (two 7-bit bases, two sets
//!   of 64 × 3-bit minors). A saturated minor triggers a *rebase* — the base
//!   absorbs the smallest minor of the set — which avoids the overflow and
//!   its re-encryption cost entirely when usage is uniform.
//!
//! Effective counter values are `major + minor` (ZCC/Uniform) or
//! `(major ‖ base) + minor` (MCR) and are **never reused**: every overflow
//! advances the major/base beyond every previously issued value (§V). The
//! property tests in this module machine-check that claim.

mod codec;

use super::{
    CounterLine, IncrementOutcome, LineImage, OverflowEvent, OverflowKind, ReencryptSpan,
};

/// Counters per morphable line.
pub const MORPH_ARITY: usize = 128;

/// Counters per MCR set (one base per set, Fig 13b).
pub const MCR_SET: usize = 64;

/// Width of the ZCC major counter in bits (Fig 8).
pub const ZCC_MAJOR_BITS: u32 = 57;

/// Width of the MCR major counter in bits (Fig 13b).
pub const MCR_MAJOR_BITS: u32 = 49;

/// Width of each MCR base in bits.
pub const MCR_BASE_BITS: u32 = 7;

/// Maximum value of a 3-bit minor (Uniform / MCR formats).
const MINOR3_MAX: u64 = 7;

/// Maximum value of an MCR base.
const BASE_MAX: u64 = (1 << MCR_BASE_BITS) - 1;

/// When a set-reset finds at most this many non-zero minors in the set,
/// usage has re-sparsified and the line morphs back to ZCC instead (see
/// `increment_mcr`).
const MCR_SPARSE_SET_THRESHOLD: usize = 32;

/// Which overflow-avoidance features are enabled.
///
/// The paper evaluates both: `ZccOnly` is "MorphCtr-128 (ZCC-only)" in
/// Fig 11, `ZccRebase` is the full "MorphCtr-128 (ZCC+Rebasing)" design of
/// Fig 14 onwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MorphMode {
    /// ZCC with a uniform 3-bit fallback; no rebasing.
    ZccOnly,
    /// ZCC plus the MCR double-base rebasing format (the full design).
    ZccRebase,
    /// ZCC plus *single-base* rebasing: the 57-bit major itself acts as
    /// the base for all 128 uniform 3-bit minors (footnote 5 of the paper:
    /// adequate for page sizes larger than 4 KB, where both halves of the
    /// line belong to one page and advance in phase).
    SingleBase,
}

/// The representation a line is currently stored in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MorphFormat {
    /// Zero Counter Compression (sparse usage).
    Zcc,
    /// Uniform 128 × 3-bit minors (dense usage, ZCC-only mode).
    Uniform,
    /// Minor Counter Rebasing with two bases (dense usage, full mode).
    Mcr,
}

/// Returns the ZCC minor width for `n` non-zero counters, or `None` when
/// the line must leave the ZCC format (> 64 non-zero counters).
///
/// This is the utility-based allotment schedule of §III-B1: the 256-bit
/// value field is divided among only the non-zero counters.
#[must_use]
pub fn zcc_width(nonzero: usize) -> Option<u32> {
    match nonzero {
        0..=16 => Some(16),
        17..=32 => Some(8),
        33..=36 => Some(7),
        37..=42 => Some(6),
        43..=51 => Some(5),
        52..=64 => Some(4),
        _ => None,
    }
}

/// A morphable counter cacheline.
///
/// # Example
///
/// ```
/// use morphtree_core::counters::morph::{MorphLine, MorphMode, MorphFormat};
/// use morphtree_core::counters::CounterLine;
///
/// let mut line = MorphLine::new(MorphMode::ZccRebase);
/// assert_eq!(line.format(), MorphFormat::Zcc);
/// // With 10 non-zero counters each gets 16 bits: plenty of headroom.
/// for slot in 0..10 {
///     for _ in 0..100 {
///         line.increment(slot);
///     }
/// }
/// assert_eq!(line.get(3), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MorphLine {
    mode: MorphMode,
    format: MorphFormat,
    /// 57-bit quantity in ZCC/Uniform; 49-bit in MCR.
    major: u64,
    /// Per-set bases, only meaningful in MCR format.
    bases: [u64; 2],
    /// The 128 minor counters (≤ 16 bits each).
    values: Box<[u16; MORPH_ARITY]>,
    mac: u64,
}

impl MorphLine {
    /// Creates a fresh all-zero line in ZCC format.
    #[must_use]
    pub fn new(mode: MorphMode) -> Self {
        MorphLine {
            mode,
            format: MorphFormat::Zcc,
            major: 0,
            bases: [0; 2],
            values: Box::new([0; MORPH_ARITY]),
            mac: 0,
        }
    }

    /// Decodes a line from its 64-byte image (the inverse of
    /// [`CounterLine::encode`]; the `mode` is configuration, not stored).
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::CodecError`] if the image is not a
    /// well-formed morphable line — images only ever come from the codec,
    /// so a failure means the stored bytes were corrupted.
    pub fn decode(mode: MorphMode, image: &LineImage) -> Result<Self, crate::error::CodecError> {
        codec::decode(mode, image)
    }

    /// The configured mode (ZCC-only or ZCC+Rebasing).
    #[must_use]
    pub fn mode(&self) -> MorphMode {
        self.mode
    }

    /// The current storage format.
    #[must_use]
    pub fn format(&self) -> MorphFormat {
        self.format
    }

    /// The major counter value (57-bit in ZCC/Uniform, 49-bit in MCR).
    #[must_use]
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The per-set bases (meaningful only in MCR format).
    #[must_use]
    pub fn bases(&self) -> [u64; 2] {
        self.bases
    }

    /// The current ZCC minor width in bits, if in ZCC format.
    #[must_use]
    pub fn zcc_counter_size(&self) -> Option<u32> {
        match self.format {
            MorphFormat::Zcc => zcc_width(self.used_counters()),
            _ => None,
        }
    }

    fn nonzero(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count()
    }

    fn max_value(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0) as u64
    }

    /// Full reset from ZCC/Uniform: advance the major past every issued
    /// value, zero the minors, give the written slot a fresh count of 1.
    fn full_reset(&mut self, slot: usize, kind: OverflowKind) -> IncrementOutcome {
        let used = self.nonzero();
        self.major += self.max_value() + 1;
        self.values.fill(0);
        self.values[slot] = 1;
        self.format = MorphFormat::Zcc;
        IncrementOutcome::Overflow(OverflowEvent {
            span: ReencryptSpan::All,
            used_counters: used,
            kind,
        })
    }

    /// Full reset out of MCR: per §IV-2 the major advances by two and the
    /// format returns to ZCC. In ZCC the major is the full 57-bit quantity,
    /// i.e. `(major49 + 2) << 7`, which exceeds the largest value issued in
    /// MCR (`(major49 ‖ 127) + 7`).
    fn full_reset_from_mcr(&mut self, slot: usize, kind: OverflowKind) -> IncrementOutcome {
        let used = self.nonzero();
        self.major = (self.major + 2) << MCR_BASE_BITS;
        self.bases = [0; 2];
        self.values.fill(0);
        self.values[slot] = 1;
        self.format = MorphFormat::Zcc;
        IncrementOutcome::Overflow(OverflowEvent {
            span: ReencryptSpan::All,
            used_counters: used,
            kind,
        })
    }

    fn increment_zcc(&mut self, slot: usize) -> IncrementOutcome {
        let was_zero = self.values[slot] == 0;
        let nonzero_after = self.nonzero() + usize::from(was_zero);

        if let Some(width) = zcc_width(nonzero_after) {
            let limit = 1u64 << width;
            let new_val = self.values[slot] as u64 + 1;
            let max_other = self.max_value();
            if max_other >= limit {
                // A narrower width cannot hold an existing counter: the
                // line cannot re-encode (this is what the pathological
                // 67-write pattern of §V exploits).
                return self.full_reset(slot, OverflowKind::ZccRewidthFailure);
            }
            if new_val >= limit {
                return self.full_reset(slot, OverflowKind::FullReset);
            }
            self.values[slot] = new_val as u16;
            return IncrementOutcome::Ok;
        }

        // The 65th counter just became non-zero: leave ZCC.
        match self.mode {
            MorphMode::ZccOnly | MorphMode::SingleBase => self.switch_to_uniform(slot),
            MorphMode::ZccRebase => self.switch_to_mcr(slot),
        }
    }

    /// ZCC → Uniform (ZCC-only mode): possible without any re-encryption
    /// iff every minor fits in 3 bits.
    fn switch_to_uniform(&mut self, slot: usize) -> IncrementOutcome {
        if self.max_value() > MINOR3_MAX {
            return self.full_reset(slot, OverflowKind::ZccRewidthFailure);
        }
        self.format = MorphFormat::Uniform;
        self.values[slot] += 1;
        IncrementOutcome::Ok
    }

    /// ZCC → MCR (full mode). Effective values are preserved where the
    /// minors fit in 3 bits (base := low 7 bits of the major); a set whose
    /// largest minor is ≥ 8 takes a set-reset so no value is ever reused.
    fn switch_to_mcr(&mut self, slot: usize) -> IncrementOutcome {
        let used = self.nonzero();
        let base_init = self.major & BASE_MAX;
        let major49 = self.major >> MCR_BASE_BITS;

        let mut reset_sets = [false; 2];
        let mut new_bases = [base_init; 2];
        for set in 0..2 {
            let range = set * MCR_SET..(set + 1) * MCR_SET;
            let max_set = self.values[range].iter().copied().max().unwrap_or(0) as u64;
            if max_set > MINOR3_MAX {
                let bumped = base_init + max_set + 1;
                if bumped > BASE_MAX {
                    // Cannot even express the reset base: give up on the
                    // switch and take a plain full reset (stays ZCC).
                    return self.full_reset(slot, OverflowKind::FormatSwitchReset);
                }
                reset_sets[set] = true;
                new_bases[set] = bumped;
            }
        }

        self.format = MorphFormat::Mcr;
        self.major = major49;
        self.bases = new_bases;
        for (set, &reset) in reset_sets.iter().enumerate() {
            if reset {
                self.values[set * MCR_SET..(set + 1) * MCR_SET].fill(0);
            }
        }
        self.values[slot] += 1;

        match reset_sets {
            [false, false] => IncrementOutcome::Ok,
            [true, true] => IncrementOutcome::Overflow(OverflowEvent {
                span: ReencryptSpan::All,
                used_counters: used,
                kind: OverflowKind::FormatSwitchReset,
            }),
            [first, _] => {
                let set = usize::from(!first);
                IncrementOutcome::Overflow(OverflowEvent {
                    span: ReencryptSpan::Set { start: set * MCR_SET, len: MCR_SET },
                    used_counters: used,
                    kind: OverflowKind::FormatSwitchReset,
                })
            }
        }
    }

    fn increment_uniform(&mut self, slot: usize) -> IncrementOutcome {
        if (self.values[slot] as u64) < MINOR3_MAX {
            self.values[slot] += 1;
            return IncrementOutcome::Ok;
        }
        if self.mode == MorphMode::SingleBase {
            // Footnote 5: the major doubles as the (unbounded 57-bit) base;
            // rebase the whole line when every minor is non-zero.
            let min = self.values.iter().copied().min().unwrap_or(0) as u64;
            if min > 0 {
                self.major += min;
                for v in self.values.iter_mut() {
                    *v -= min as u16;
                }
                self.values[slot] += 1;
                return IncrementOutcome::Rebased;
            }
        }
        self.full_reset(slot, OverflowKind::FullReset)
    }

    fn increment_mcr(&mut self, slot: usize) -> IncrementOutcome {
        if (self.values[slot] as u64) < MINOR3_MAX {
            self.values[slot] += 1;
            return IncrementOutcome::Ok;
        }

        let set = slot / MCR_SET;
        let range = set * MCR_SET..(set + 1) * MCR_SET;
        let min_set = self.values[range.clone()].iter().copied().min().unwrap_or(0) as u64;

        if min_set > 0 {
            // Rebase (Fig 12): slide the base forward by the smallest minor;
            // no effective value other than the incremented one changes.
            let new_base = self.bases[set] + min_set;
            if new_base > BASE_MAX {
                return self.full_reset_from_mcr(slot, OverflowKind::BaseOverflow);
            }
            self.bases[set] = new_base;
            for v in &mut self.values[range] {
                *v -= min_set as u16;
            }
            self.values[slot] += 1;
            return IncrementOutcome::Rebased;
        }

        // Some minor in the set is zero: rebasing is impossible. If the set
        // is still densely used, reset it against its base (64
        // re-encryptions, §IV-2). If usage has *re-sparsified* — most
        // minors are zero — MCR is the wrong representation entirely, so
        // morph back to ZCC with a full reset (the incremented counter gets
        // a wide ZCC field again). This adaptive escape is an extension in
        // the spirit of §III ("dynamically changing the representation
        // based on the usage pattern"); see DESIGN.md.
        let range_nonzero = self.values[range.clone()].iter().filter(|&&v| v != 0).count();
        if range_nonzero <= MCR_SPARSE_SET_THRESHOLD {
            return self.full_reset_from_mcr(slot, OverflowKind::FullReset);
        }
        let used = self.nonzero();
        let max_set = self.values[range.clone()].iter().copied().max().unwrap_or(0) as u64;
        let new_base = self.bases[set] + max_set + 1;
        if new_base > BASE_MAX {
            return self.full_reset_from_mcr(slot, OverflowKind::BaseOverflow);
        }
        self.bases[set] = new_base;
        self.values[range].fill(0);
        self.values[slot] = 1;
        IncrementOutcome::Overflow(OverflowEvent {
            span: ReencryptSpan::Set { start: set * MCR_SET, len: MCR_SET },
            used_counters: used,
            kind: OverflowKind::SetReset,
        })
    }
}

impl CounterLine for MorphLine {
    fn arity(&self) -> usize {
        MORPH_ARITY
    }

    fn get(&self, slot: usize) -> u64 {
        let minor = self.values[slot] as u64;
        match self.format {
            MorphFormat::Zcc | MorphFormat::Uniform => self.major + minor,
            // `(major ‖ base) + minor`; bases are 7 bits so the
            // concatenation equals addition.
            MorphFormat::Mcr => (self.major << MCR_BASE_BITS) + self.bases[slot / MCR_SET] + minor,
        }
    }

    fn increment(&mut self, slot: usize) -> IncrementOutcome {
        assert!(slot < MORPH_ARITY, "slot {slot} out of range");
        match self.format {
            MorphFormat::Zcc => self.increment_zcc(slot),
            MorphFormat::Uniform => self.increment_uniform(slot),
            MorphFormat::Mcr => self.increment_mcr(slot),
        }
    }

    fn used_counters(&self) -> usize {
        self.nonzero()
    }

    fn mac(&self) -> u64 {
        self.mac
    }

    fn set_mac(&mut self, mac: u64) {
        self.mac = mac;
    }

    fn encode(&self) -> LineImage {
        codec::encode(self, true)
    }

    fn encode_for_mac(&self) -> LineImage {
        codec::encode(self, false)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index parallel snapshots by slot
mod tests {
    use super::*;

    fn line(mode: MorphMode) -> MorphLine {
        MorphLine::new(mode)
    }

    #[test]
    fn width_schedule_matches_paper() {
        // §III-B1: "up to 16 non-zero counters each counter gets 16-bits, up
        // to 32 each gets 8-bits ... 7-bits up to 36, 6-bits up to 42,
        // 5-bits up to 51 and 4-bits up to 64".
        assert_eq!(zcc_width(1), Some(16));
        assert_eq!(zcc_width(16), Some(16));
        assert_eq!(zcc_width(17), Some(8));
        assert_eq!(zcc_width(32), Some(8));
        assert_eq!(zcc_width(36), Some(7));
        assert_eq!(zcc_width(42), Some(6));
        assert_eq!(zcc_width(51), Some(5));
        assert_eq!(zcc_width(64), Some(4));
        assert_eq!(zcc_width(65), None);
    }

    #[test]
    fn width_schedule_fits_value_field() {
        // n non-zero counters at width w must fit the 256-bit value field.
        for n in 1..=64 {
            let w = zcc_width(n).unwrap();
            assert!(n as u32 * w <= 256, "n={n} w={w}");
        }
    }

    #[test]
    fn sparse_counters_get_sixteen_bits() {
        let mut l = line(MorphMode::ZccRebase);
        // One counter can take 2^16 - 1 increments before overflow.
        for i in 0..65_535 {
            assert_eq!(l.increment(0), IncrementOutcome::Ok, "write {i}");
        }
        assert!(l.increment(0).overflow().is_some());
    }

    #[test]
    fn zcc_rewidth_failure_on_threshold_crossing() {
        let mut l = line(MorphMode::ZccRebase);
        // 16 counters driven to 300 (> 2^8): fine at width 16.
        for slot in 0..16 {
            for _ in 0..300 {
                assert!(l.increment(slot).overflow().is_none());
            }
        }
        // The 17th non-zero counter forces width 8; 300 no longer fits.
        let out = l.increment(16);
        let event = out.overflow().expect("rewidth failure");
        assert_eq!(event.kind, OverflowKind::ZccRewidthFailure);
        assert_eq!(event.span, ReencryptSpan::All);
        // `used_counters` counts the non-zero counters at overflow time
        // (the incoming 17th counter is still zero when the reset fires).
        assert_eq!(event.used_counters, 16);
    }

    #[test]
    fn pathological_dos_pattern_overflows_in_67_writes() {
        // §V: write once to 52 counters (width drops to 4 bits), then 15
        // writes to a single counter — overflow on write 67.
        let mut l = line(MorphMode::ZccRebase);
        let mut writes = 0;
        for slot in 0..52 {
            assert!(l.increment(slot).overflow().is_none());
            writes += 1;
        }
        assert_eq!(l.zcc_counter_size(), Some(4));
        for _ in 0..14 {
            assert!(l.increment(0).overflow().is_none());
            writes += 1;
        }
        assert!(l.increment(0).overflow().is_some());
        writes += 1;
        assert_eq!(writes, 67);
    }

    #[test]
    fn uniform_usage_tolerates_over_500_writes() {
        // §V: "Morphable counters can tolerate 500+ writes before an
        // overflow, when counters are written uniformly".
        for mode in [MorphMode::ZccOnly, MorphMode::ZccRebase] {
            let mut l = line(mode);
            let mut writes = 0u64;
            'outer: loop {
                for slot in 0..MORPH_ARITY {
                    writes += 1;
                    if l.increment(slot).overflow().is_some() {
                        break 'outer;
                    }
                }
                if writes > 2_000_000 {
                    // Rebasing mode sustains round-robin writes almost
                    // indefinitely; stop counting.
                    break;
                }
            }
            assert!(writes > 500, "{mode:?} tolerated only {writes}");
        }
    }

    #[test]
    fn zcc_only_switches_to_uniform_at_65_counters() {
        let mut l = line(MorphMode::ZccOnly);
        for slot in 0..64 {
            l.increment(slot);
        }
        assert_eq!(l.format(), MorphFormat::Zcc);
        assert_eq!(l.increment(64), IncrementOutcome::Ok);
        assert_eq!(l.format(), MorphFormat::Uniform);
        // Values preserved across the switch.
        assert_eq!(l.get(0), 1);
        assert_eq!(l.get(64), 1);
        assert_eq!(l.get(127), 0);
    }

    #[test]
    fn zcc_rebase_switches_to_mcr_at_65_counters() {
        let mut l = line(MorphMode::ZccRebase);
        for slot in 0..64 {
            l.increment(slot);
        }
        let before: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
        assert_eq!(l.increment(64), IncrementOutcome::Ok);
        assert_eq!(l.format(), MorphFormat::Mcr);
        for slot in 0..128 {
            let expect = before[slot] + u64::from(slot == 64);
            assert_eq!(l.get(slot), expect, "slot {slot}");
        }
    }

    #[test]
    fn mcr_switch_resets_sets_with_wide_minors() {
        let mut l = line(MorphMode::ZccRebase);
        // Drive set-0 counters above 7 while staying in ZCC.
        for slot in 0..32 {
            for _ in 0..12 {
                l.increment(slot);
            }
        }
        for slot in 32..64 {
            l.increment(slot);
        }
        let before: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
        // 65th non-zero counter (in set 1) triggers the switch; set 0 holds
        // values of 12 > 7, so it must set-reset.
        let out = l.increment(64);
        let event = out.overflow().expect("set 0 cannot re-encode");
        assert_eq!(event.kind, OverflowKind::FormatSwitchReset);
        assert_eq!(event.span, ReencryptSpan::Set { start: 0, len: 64 });
        // Monotonicity: every reset counter advanced.
        for slot in 0..64 {
            assert!(l.get(slot) > before[slot], "slot {slot}");
        }
        // Untouched set preserved exactly.
        for slot in 65..128 {
            assert_eq!(l.get(slot), before[slot], "slot {slot}");
        }
    }

    #[test]
    fn rebase_changes_only_the_incremented_counter() {
        let mut l = line(MorphMode::ZccRebase);
        // Enter MCR with all 128 counters at 1.
        for slot in 0..128 {
            l.increment(slot);
        }
        assert_eq!(l.format(), MorphFormat::Mcr);
        // Saturate slot 5 (3-bit minor: 1 → 7 takes 6 more increments).
        for _ in 0..6 {
            assert_eq!(l.increment(5), IncrementOutcome::Ok);
        }
        let before: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
        // Next increment must rebase (min of set is 1 > 0).
        assert_eq!(l.increment(5), IncrementOutcome::Rebased);
        for slot in 0..128 {
            let expect = before[slot] + u64::from(slot == 5);
            assert_eq!(l.get(slot), expect, "slot {slot}");
        }
    }

    #[test]
    fn mcr_set_reset_when_rebase_impossible_and_set_is_dense() {
        let mut l = line(MorphMode::ZccRebase);
        for slot in 0..128 {
            l.increment(slot);
        }
        // Give 40 slots of set 0 a second increment, then saturate slot 5.
        for slot in 0..40 {
            l.increment(slot);
        }
        for _ in 0..5 {
            assert_eq!(l.increment(5), IncrementOutcome::Ok);
        }
        // First saturation rebases by the set minimum (1); slots 40..63 of
        // set 0 become zero while 41 slots stay non-zero.
        assert_eq!(l.increment(5), IncrementOutcome::Rebased);
        // The next saturation cannot rebase (min = 0), and the set is still
        // densely used (41 > threshold): paper-style set reset.
        let before: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
        let out = l.increment(5);
        let event = out.overflow().expect("set reset");
        assert_eq!(event.kind, OverflowKind::SetReset);
        assert_eq!(event.span, ReencryptSpan::Set { start: 0, len: 64 });
        // Set 0 counters all advanced; set 1 untouched.
        for slot in 0..64 {
            assert!(l.get(slot) > before[slot], "slot {slot}");
        }
        for slot in 64..128 {
            assert_eq!(l.get(slot), before[slot], "slot {slot}");
        }
    }

    #[test]
    fn mcr_escapes_to_zcc_when_usage_resparsifies() {
        let mut l = line(MorphMode::ZccRebase);
        for slot in 0..128 {
            l.increment(slot);
        }
        assert_eq!(l.format(), MorphFormat::Mcr);
        // Hammer one slot: the first saturation rebases by 1, zeroing the
        // rest of the set; the next cannot rebase and finds a nearly-empty
        // set — the line morphs back to ZCC (adaptive escape).
        let before: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
        let mut escaped = false;
        for _ in 0..16 {
            if let IncrementOutcome::Overflow(e) = l.increment(5) {
                assert_eq!(e.kind, OverflowKind::FullReset);
                assert_eq!(e.span, ReencryptSpan::All);
                escaped = true;
                break;
            }
        }
        assert!(escaped, "expected the adaptive escape to fire");
        assert_eq!(l.format(), MorphFormat::Zcc);
        // Monotonicity across the escape.
        for slot in 0..128 {
            assert!(l.get(slot) > before[slot], "slot {slot}");
        }
        // And the hot counter now enjoys a wide ZCC field.
        assert_eq!(l.zcc_counter_size(), Some(16));
    }

    #[test]
    fn base_overflow_returns_to_zcc_with_major_plus_two() {
        let mut l = line(MorphMode::ZccRebase);
        for slot in 0..128 {
            l.increment(slot);
        }
        assert_eq!(l.format(), MorphFormat::Mcr);
        let major49 = l.major();
        // Round-robin writes: every saturation rebases by 7 (all minors
        // move together), walking the base to exhaustion, at which point
        // the line takes a BaseOverflow full reset back to ZCC.
        let mut rebases = 0;
        'outer: loop {
            for slot in 0..128 {
                match l.increment(slot) {
                    IncrementOutcome::Rebased => rebases += 1,
                    IncrementOutcome::Overflow(e) => {
                        assert_eq!(e.kind, OverflowKind::BaseOverflow);
                        break 'outer;
                    }
                    IncrementOutcome::Ok => {}
                }
            }
        }
        assert!(rebases > 10, "expected many rebases, saw {rebases}");
        assert_eq!(l.format(), MorphFormat::Zcc);
        assert_eq!(l.major(), (major49 + 2) << 7);
    }

    #[test]
    fn effective_values_strictly_increase_per_slot() {
        // Mixed torture: cycle through slots with skewed frequencies.
        for mode in [MorphMode::ZccOnly, MorphMode::ZccRebase] {
            let mut l = line(mode);
            let mut last: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
            let mut state = 0x9e37_79b9_u64;
            for _ in 0..50_000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let slot = ((state >> 33) % 128) as usize;
                let before_others: Option<Vec<u64>> = None;
                let _ = before_others;
                let out = l.increment(slot);
                let now = l.get(slot);
                assert!(now > last[slot], "{mode:?} slot {slot}: {now} <= {}", last[slot]);
                last[slot] = now;
                if let IncrementOutcome::Overflow(e) = out {
                    // All spanned slots advanced (or stayed) — refresh cache.
                    for s in e.span.slots(128) {
                        let v = l.get(s);
                        assert!(v >= last[s], "{mode:?} span slot {s}");
                        last[s] = v;
                    }
                }
            }
        }
    }

    #[test]
    fn non_overflow_increments_never_disturb_other_slots() {
        let mut l = line(MorphMode::ZccRebase);
        let mut shadow = vec![0u64; 128];
        let mut state = 12345u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            let slot = ((state >> 30) % 128) as usize;
            let out = l.increment(slot);
            match out {
                IncrementOutcome::Ok | IncrementOutcome::Rebased => {
                    shadow[slot] += 1;
                }
                IncrementOutcome::Overflow(e) => {
                    // Spanned slots may change arbitrarily (upwards); refresh.
                    for s in e.span.slots(128) {
                        shadow[s] = l.get(s);
                    }
                    shadow[slot] = l.get(slot);
                }
            }
            for s in 0..128 {
                assert_eq!(l.get(s), shadow[s], "slot {s} diverged");
            }
        }
    }

    #[test]
    fn single_base_rebases_over_all_128_counters() {
        let mut l = line(MorphMode::SingleBase);
        for slot in 0..128 {
            l.increment(slot);
        }
        assert_eq!(l.format(), MorphFormat::Uniform);
        // Round-robin writes rebase via the major indefinitely.
        let mut rebases = 0;
        let mut overflows = 0;
        for round in 0..64 {
            for slot in 0..128 {
                match l.increment(slot) {
                    IncrementOutcome::Rebased => rebases += 1,
                    IncrementOutcome::Overflow(_) => overflows += 1,
                    IncrementOutcome::Ok => {}
                }
            }
            let _ = round;
        }
        assert!(rebases > 0, "single-base rebasing engaged");
        assert_eq!(overflows, 0, "uniform sweeps never overflow");
        // And there is no 7-bit base to exhaust: values keep growing.
        assert!(l.get(0) > 64);
    }

    #[test]
    fn single_base_loses_to_double_base_on_out_of_phase_halves() {
        // Footnote 5's rationale inverted: with 4 KB pages the two
        // 64-counter halves advance out of phase; a single base is pinned
        // by the idle half while double bases rebase per set.
        let run = |mode: MorphMode| {
            let mut l = line(mode);
            for slot in 0..128 {
                l.increment(slot);
            }
            // Only the first half (one page) keeps getting written.
            let mut overflow_cost = 0u64;
            for round in 0..200 {
                for slot in 0..64 {
                    if let IncrementOutcome::Overflow(e) = l.increment(slot) {
                        overflow_cost += e.span.len(128) as u64;
                    }
                }
                let _ = round;
            }
            overflow_cost
        };
        let single = run(MorphMode::SingleBase);
        let double = run(MorphMode::ZccRebase);
        assert!(
            double < single,
            "double-base must win on out-of-phase halves: {double} !< {single}"
        );
    }

    #[test]
    fn single_base_rebase_preserves_effective_values() {
        let mut l = line(MorphMode::SingleBase);
        for slot in 0..128 {
            l.increment(slot);
        }
        for _ in 0..6 {
            l.increment(9);
        }
        let before: Vec<u64> = (0..128).map(|s| l.get(s)).collect();
        assert_eq!(l.increment(9), IncrementOutcome::Rebased);
        for slot in 0..128 {
            let expect = before[slot] + u64::from(slot == 9);
            assert_eq!(l.get(slot), expect, "slot {slot}");
        }
    }

    #[test]
    fn get_panics_out_of_range() {
        let l = line(MorphMode::ZccRebase);
        let result = std::panic::catch_unwind(|| l.get(128));
        assert!(result.is_err());
    }
}
