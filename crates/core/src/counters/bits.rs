//! Bit-field packing helpers for 64-byte counter-line codecs.
//!
//! All counter organizations in the paper are defined as bit-level layouts
//! of a 512-bit cacheline (Fig 8, Fig 13). These helpers read and write
//! arbitrary-width little-endian bit fields so each codec can mirror its
//! figure directly.

use crate::CACHELINE_BYTES;

/// Reads `width` bits starting at bit offset `bit` (LSB-first within the
/// line) as a `u64`.
///
/// # Panics
///
/// Panics if `width > 64` or the field extends past the end of the line.
pub fn get_bits(buf: &[u8; CACHELINE_BYTES], bit: usize, width: usize) -> u64 {
    assert!(width <= 64, "field width {width} exceeds 64 bits");
    assert!(bit + width <= CACHELINE_BYTES * 8, "field out of range");
    let mut value = 0u64;
    for i in 0..width {
        let pos = bit + i;
        let byte = buf[pos / 8];
        if (byte >> (pos % 8)) & 1 == 1 {
            value |= 1 << i;
        }
    }
    value
}

/// Writes `width` bits of `value` starting at bit offset `bit`.
///
/// # Panics
///
/// Panics if `width > 64`, the field extends past the end of the line, or
/// `value` does not fit in `width` bits.
pub fn set_bits(buf: &mut [u8; CACHELINE_BYTES], bit: usize, width: usize, value: u64) {
    assert!(width <= 64, "field width {width} exceeds 64 bits");
    assert!(bit + width <= CACHELINE_BYTES * 8, "field out of range");
    if width < 64 {
        assert!(
            value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
    }
    for i in 0..width {
        let pos = bit + i;
        let mask = 1u8 << (pos % 8);
        if (value >> i) & 1 == 1 {
            buf[pos / 8] |= mask;
        } else {
            buf[pos / 8] &= !mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut buf = [0u8; CACHELINE_BYTES];
        set_bits(&mut buf, 3, 7, 0x55);
        assert_eq!(get_bits(&buf, 3, 7), 0x55);
        // Neighbours untouched.
        assert_eq!(get_bits(&buf, 0, 3), 0);
        assert_eq!(get_bits(&buf, 10, 10), 0);
    }

    #[test]
    fn roundtrip_across_byte_boundaries() {
        let mut buf = [0u8; CACHELINE_BYTES];
        set_bits(&mut buf, 13, 57, 0x1ff_ffff_ffff_ffff);
        assert_eq!(get_bits(&buf, 13, 57), 0x1ff_ffff_ffff_ffff);
    }

    #[test]
    fn full_width_field() {
        let mut buf = [0u8; CACHELINE_BYTES];
        set_bits(&mut buf, 448, 64, u64::MAX);
        assert_eq!(get_bits(&buf, 448, 64), u64::MAX);
    }

    #[test]
    fn overwrite_clears_old_bits() {
        let mut buf = [0u8; CACHELINE_BYTES];
        set_bits(&mut buf, 8, 8, 0xff);
        set_bits(&mut buf, 8, 8, 0x01);
        assert_eq!(get_bits(&buf, 8, 8), 0x01);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_value() {
        let mut buf = [0u8; CACHELINE_BYTES];
        set_bits(&mut buf, 0, 3, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_field() {
        let buf = [0u8; CACHELINE_BYTES];
        let _ = get_bits(&buf, 510, 8);
    }

    #[test]
    fn dense_packing_of_3_bit_fields() {
        // The SC-128 minor array: 128 x 3-bit fields must pack without
        // interference.
        let mut buf = [0u8; CACHELINE_BYTES];
        for i in 0..128 {
            set_bits(&mut buf, 64 + 3 * i, 3, (i % 8) as u64);
        }
        for i in 0..128 {
            assert_eq!(get_bits(&buf, 64 + 3 * i, 3), (i % 8) as u64, "slot {i}");
        }
    }
}
