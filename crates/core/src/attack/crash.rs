//! Crash-campaign driver: fault-injected kills against the epoch-bounded
//! sharded persistence layer ([`crate::persist::epoch`]).
//!
//! Where [`super::run_campaign`] proves *tamper* detection, this driver
//! proves *crash* correctness: it drives an [`EpochShardedMemory`] through
//! a seeded write-heavy workload and kills it at seeded byte offsets —
//! inside epochs, across epoch boundaries, and (via
//! [`EpochShardedMemory::interrupted_cut_state`]) between the per-shard
//! seals of a two-phase cut. Every kill point must recover to a consistent
//! epoch or a typed refusal, never a panic or silent divergence:
//!
//! - each recovered healthy shard is compared **byte-for-byte** against a
//!   serial oracle (the pre-epoch full-replay [`persist::recover`] path on
//!   the same truncated inputs);
//! - full-length-log drills additionally compare against the live engine
//!   state;
//! - mid-cut drills must be *detected* ([`ShardedRecovery::mid_cut`]) and
//!   resolved to the last consistent epoch;
//! - quarantine drills corrupt one shard's log and demand the shard
//!   refuses while the rest keep serving;
//! - the final clean-shutdown drill pins the constant-work guarantee
//!   (zero replayed transactions, zero verified lines).
//!
//! Recovery latency is measured per drill and summarized in the report —
//! the CI artifact that tracks bounded recovery staying bounded.
//!
//! [`ShardedRecovery::mid_cut`]: crate::persist::ShardedRecovery::mid_cut

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use crate::concurrent::{Op, SplitMix64};
use crate::error::ShardError;
use crate::persist::{
    self, parse_sharded, recover_sharded_bounded, EpochShardedMemory, RecoveryMode,
    RecoveryStats,
};
use crate::tree::TreeConfig;
use crate::CACHELINE_BYTES;

/// Parameters of a seeded crash campaign.
#[derive(Debug, Clone)]
pub struct CrashCampaignConfig {
    /// Seed of the deterministic kill-point stream.
    pub seed: u64,
    /// Kill drills to fire (spread over the workload's batches).
    pub kills: usize,
    /// Shards of the victim memory.
    pub shards: usize,
    /// Worker threads per batch.
    pub threads: usize,
    /// Epoch auto-cut threshold in ops (0 disables auto-cuts; the
    /// campaign still cuts once at the end).
    pub epoch_ops: u64,
    /// Batches in the workload.
    pub batches: usize,
    /// Ops per batch (write-heavy, seeded).
    pub batch_ops: usize,
    /// Protected-memory size of the victim.
    pub memory_bytes: u64,
    /// Working-set size in data lines.
    pub hot_lines: u64,
}

impl Default for CrashCampaignConfig {
    fn default() -> Self {
        CrashCampaignConfig {
            seed: 42,
            kills: 24,
            shards: 4,
            threads: 2,
            epoch_ops: 64,
            batches: 12,
            batch_ops: 32,
            memory_bytes: 1 << 20,
            hot_lines: 192,
        }
    }
}

/// Why a crash campaign could not run. Configuration errors only — drill
/// failures are reported in the [`CrashCampaignReport`], never here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashCampaignError {
    /// The shard partition is impossible.
    Shard(ShardError),
    /// The working set does not fit in the protected memory.
    WorkingSetTooLarge {
        /// The requested working-set size, in lines.
        requested: u64,
        /// Data lines available at this memory size.
        available: u64,
    },
    /// A zero-length workload cannot be drilled.
    EmptyWorkload,
}

impl fmt::Display for CrashCampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashCampaignError::Shard(e) => write!(f, "shard partition is unusable: {e}"),
            CrashCampaignError::WorkingSetTooLarge { requested, available } => {
                write!(f, "working set of {requested} lines exceeds the {available} available")
            }
            CrashCampaignError::EmptyWorkload => {
                write!(f, "campaign needs at least one batch with at least one op")
            }
        }
    }
}

impl Error for CrashCampaignError {}

impl From<ShardError> for CrashCampaignError {
    fn from(e: ShardError) -> Self {
        CrashCampaignError::Shard(e)
    }
}

/// Per-mode tally of shard recoveries across every drill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeTally {
    /// Shards recovered on the constant-work clean-shutdown path.
    pub clean: usize,
    /// Shards recovered on the bounded (open-epoch-only) path.
    pub bounded: usize,
    /// Shards that downgraded to full replay + full verification.
    pub full: usize,
}

impl ModeTally {
    fn record(&mut self, mode: RecoveryMode) {
        match mode {
            RecoveryMode::CleanShutdown => self.clean += 1,
            RecoveryMode::Bounded => self.bounded += 1,
            RecoveryMode::Full => self.full += 1,
        }
    }
}

/// The aggregated outcome of one [`run_crash_campaign`] call.
#[derive(Debug, Clone)]
pub struct CrashCampaignReport {
    config: String,
    seed: u64,
    shards: usize,
    threads: usize,
    epoch_ops: u64,
    /// Total drills executed: seeded kills (including the per-batch
    /// full-log drills and the final clean-shutdown drill), mid-cut
    /// crashes, and quarantine injections.
    pub drills: usize,
    /// Per-shard recovery-mode histogram over all drills.
    pub modes: ModeTally,
    /// Mid-cut (between-shard-seals) drills fired / detected.
    pub mid_cut_drills: usize,
    /// Mid-cut drills correctly flagged and resolved.
    pub mid_cut_detected: usize,
    /// Quarantine drills fired.
    pub quarantine_drills: usize,
    /// Quarantine drills where the bad shard refused and the rest served.
    pub quarantine_detected: usize,
    /// Recovered states that diverged from the serial oracle, recoveries
    /// that refused when they should not have, or violated invariants.
    pub divergences: usize,
    first_divergence: Option<String>,
    /// Epochs sealed by the workload.
    pub epochs_sealed: u64,
    /// Largest per-shard replayed-transaction count seen (bounded by the
    /// open epoch, never the history).
    pub max_replayed_txns: usize,
    /// Largest per-shard verified-line count on a non-full path.
    pub max_verified_lines: usize,
    latencies: Vec<Duration>,
}

impl CrashCampaignReport {
    fn new(config: &str, campaign: &CrashCampaignConfig) -> Self {
        CrashCampaignReport {
            config: config.to_string(),
            seed: campaign.seed,
            shards: campaign.shards,
            threads: campaign.threads,
            epoch_ops: campaign.epoch_ops,
            drills: 0,
            modes: ModeTally::default(),
            mid_cut_drills: 0,
            mid_cut_detected: 0,
            quarantine_drills: 0,
            quarantine_detected: 0,
            divergences: 0,
            first_divergence: None,
            epochs_sealed: 0,
            max_replayed_txns: 0,
            max_verified_lines: 0,
            latencies: Vec::new(),
        }
    }

    fn diverge(&mut self, what: String) {
        self.divergences += 1;
        if self.first_divergence.is_none() {
            self.first_divergence = Some(what);
        }
    }

    fn record_stats(&mut self, stats: &RecoveryStats) {
        self.modes.record(stats.mode);
        self.max_replayed_txns = self.max_replayed_txns.max(stats.replayed_txns);
        if stats.mode != RecoveryMode::Full {
            self.max_verified_lines = self.max_verified_lines.max(stats.verified_lines);
        }
    }

    /// The first oracle divergence or invariant violation, if any.
    #[must_use]
    pub fn first_divergence(&self) -> Option<&str> {
        self.first_divergence.as_deref()
    }

    /// True iff every drill recovered to oracle-identical state (or a
    /// typed refusal where one was demanded) and every mid-cut and
    /// quarantine drill was detected.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.divergences == 0
            && self.mid_cut_detected == self.mid_cut_drills
            && self.quarantine_detected == self.quarantine_drills
    }

    /// Recovery latencies `(min, mean, max)` across all timed drills.
    #[must_use]
    pub fn latency(&self) -> (Duration, Duration, Duration) {
        if self.latencies.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let min = self.latencies.iter().min().copied().unwrap_or(Duration::ZERO);
        let max = self.latencies.iter().max().copied().unwrap_or(Duration::ZERO);
        let total: Duration = self.latencies.iter().sum();
        (min, total / self.latencies.len() as u32, max)
    }

    /// Renders the campaign summary (the CI recovery-latency artifact).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crash campaign · {} · seed {} · {} shards x {} thread(s) · epoch {} ops\n",
            self.config, self.seed, self.shards, self.threads, self.epoch_ops
        ));
        out.push_str(&format!("  crash drills         {}\n", self.drills));
        out.push_str(&format!(
            "  shard recoveries     clean {} · bounded {} · full {}\n",
            self.modes.clean, self.modes.bounded, self.modes.full
        ));
        out.push_str(&format!(
            "  mid-cut drills       {}/{} detected\n",
            self.mid_cut_detected, self.mid_cut_drills
        ));
        out.push_str(&format!(
            "  quarantine drills    {}/{} detected\n",
            self.quarantine_detected, self.quarantine_drills
        ));
        out.push_str(&format!("  epochs sealed        {}\n", self.epochs_sealed));
        out.push_str(&format!(
            "  max replayed txns    {} · max verified lines {}\n",
            self.max_replayed_txns, self.max_verified_lines
        ));
        let (min, mean, max) = self.latency();
        out.push_str(&format!(
            "  recovery latency     min {:.1}us · mean {:.1}us · max {:.1}us\n",
            min.as_secs_f64() * 1e6,
            mean.as_secs_f64() * 1e6,
            max.as_secs_f64() * 1e6
        ));
        out.push_str(&format!("  divergences          {}\n", self.divergences));
        if let Some(first) = &self.first_divergence {
            out.push_str(&format!("  first divergence     {first}\n"));
        }
        out.push_str(&format!(
            "crash campaign result: {}\n",
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

fn random_payload(rng: &mut SplitMix64) -> [u8; CACHELINE_BYTES] {
    let mut payload = [0u8; CACHELINE_BYTES];
    for chunk in payload.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    payload
}

/// One kill drill: snapshot the durable `(container, WALs)` pair, cut
/// each shard's log at a seeded byte offset (or keep it whole), recover
/// bounded, and compare every healthy shard against the full-replay
/// oracle on the same inputs. `live` carries the live shard states for
/// full-length drills.
fn drill_kill(
    mem: &EpochShardedMemory,
    rng: &mut SplitMix64,
    report: &mut CrashCampaignReport,
    truncate: bool,
) {
    let container = mem.sealed_container();
    let full_wals = mem.wals();
    let wals: Vec<Vec<u8>> = full_wals
        .iter()
        .map(|w| {
            let cut = if truncate { rng.below(w.len() as u64 + 1) as usize } else { w.len() };
            w[..cut].to_vec()
        })
        .collect();

    report.drills += 1;
    let start = Instant::now();
    let rec = recover_sharded_bounded(&container, &wals);
    report.latencies.push(start.elapsed());

    let rec = match rec {
        Ok(rec) => rec,
        Err(e) => {
            // The container is intact and a truncated WAL is a benign torn
            // tail: recovery must never refuse here.
            report.diverge(format!("recovery refused an intact kill point: {e}"));
            return;
        }
    };
    let Ok((_, _, sections)) = parse_sharded(&container) else {
        report.diverge("own container failed to parse".to_string());
        return;
    };
    for shard_rec in &rec.shards {
        let s = shard_rec.shard;
        match &shard_rec.outcome {
            Ok(stats) => {
                report.record_stats(stats);
                // Serial oracle: the pre-epoch full-replay path on the
                // same truncated inputs.
                match persist::recover(sections[s], &wals[s]) {
                    Ok(oracle) => {
                        if persist::save_memory(rec.memory.shard(s))
                            != persist::save_memory(&oracle)
                        {
                            report.diverge(format!(
                                "shard {s}: bounded recovery diverged from the full-replay oracle"
                            ));
                        } else if !truncate
                            && persist::save_memory(rec.memory.shard(s))
                                != persist::save_memory(mem.memory().shard(s))
                        {
                            report.diverge(format!(
                                "shard {s}: full-log recovery diverged from the live state"
                            ));
                        }
                    }
                    Err(e) => report.diverge(format!(
                        "shard {s}: oracle refused what bounded recovery accepted: {e}"
                    )),
                }
            }
            Err(e) => {
                report.diverge(format!("shard {s}: quarantined at a benign kill point: {e}"));
            }
        }
    }
}

/// One mid-cut drill: stage a crash between the per-shard seals of the
/// next cut and demand it is detected and resolved consistently.
fn drill_mid_cut(
    mem: &EpochShardedMemory,
    report: &mut CrashCampaignReport,
    prepared: usize,
    committed: usize,
) {
    let (container, wals) = mem.interrupted_cut_state(prepared, committed);
    report.mid_cut_drills += 1;
    report.drills += 1;
    let start = Instant::now();
    let rec = recover_sharded_bounded(&container, &wals);
    report.latencies.push(start.elapsed());
    let rec = match rec {
        Ok(rec) => rec,
        Err(e) => {
            report.diverge(format!(
                "mid-cut (prepared {prepared}, committed {committed}) refused: {e}"
            ));
            return;
        }
    };
    for shard_rec in &rec.shards {
        if let Ok(stats) = &shard_rec.outcome {
            report.record_stats(stats);
        }
    }
    let epoch = mem.epoch();
    let resolved_ok = rec.resolved_epoch == epoch || rec.resolved_epoch == epoch + 1;
    let healthy_ok =
        rec.memory.healthy_shards() == mem.plan().shards() && rec.memory.verify_healthy().is_ok();
    if rec.mid_cut && resolved_ok && healthy_ok {
        report.mid_cut_detected += 1;
    } else {
        report.diverge(format!(
            "mid-cut (prepared {prepared}, committed {committed}): flagged {}, resolved {}, healthy {}",
            rec.mid_cut,
            rec.resolved_epoch,
            rec.memory.healthy_shards()
        ));
    }
}

/// One quarantine drill: corrupt a complete record in `victim`'s log and
/// demand that shard refuses while every other shard keeps serving.
fn drill_quarantine(mem: &EpochShardedMemory, report: &mut CrashCampaignReport, victim: usize) {
    let container = mem.sealed_container();
    let mut wals = mem.wals();
    // Byte 6 sits inside the first (seal) record's payload: the frame CRC
    // fails on a *complete* record, which is corruption, not a torn tail.
    wals[victim][6] ^= 0xff;

    report.quarantine_drills += 1;
    report.drills += 1;
    let start = Instant::now();
    let rec = recover_sharded_bounded(&container, &wals);
    report.latencies.push(start.elapsed());
    let rec = match rec {
        Ok(rec) => rec,
        Err(e) => {
            report.diverge(format!("quarantine drill on shard {victim} hard-failed: {e}"));
            return;
        }
    };
    let refused = rec.memory.is_quarantined(victim)
        && rec.memory.read(mem.plan().shard_base(victim)).is_err();
    let serving = (0..mem.plan().shards())
        .filter(|&s| s != victim)
        .all(|s| !rec.memory.is_quarantined(s) && rec.memory.shard(s).verify_all().is_ok());
    if refused && serving {
        report.quarantine_detected += 1;
    } else {
        report.diverge(format!(
            "quarantine drill on shard {victim}: refused {refused}, others serving {serving}"
        ));
    }
}

/// Runs a seeded crash campaign against `tree` (see the module docs for
/// the drill taxonomy).
///
/// # Errors
///
/// Returns [`CrashCampaignError`] when the campaign is misconfigured —
/// never because a drill failed; drill failures are divergences in the
/// [`CrashCampaignReport`].
pub fn run_crash_campaign(
    tree: &TreeConfig,
    campaign: &CrashCampaignConfig,
) -> Result<CrashCampaignReport, CrashCampaignError> {
    if campaign.batches == 0 || campaign.batch_ops == 0 || campaign.hot_lines == 0 {
        return Err(CrashCampaignError::EmptyWorkload);
    }
    let mut rng = SplitMix64::new(campaign.seed);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
    key[8..].copy_from_slice(&rng.next_u64().to_le_bytes());

    let mut mem = EpochShardedMemory::new(
        tree.clone(),
        campaign.memory_bytes,
        key,
        campaign.shards,
        campaign.epoch_ops,
    )?;
    let available = mem.plan().data_lines();
    if campaign.hot_lines > available {
        return Err(CrashCampaignError::WorkingSetTooLarge {
            requested: campaign.hot_lines,
            available,
        });
    }

    // Spread the kill points over the workload up front, so the drill
    // schedule is a pure function of the seed.
    let mut kills_at = vec![0usize; campaign.batches];
    for _ in 0..campaign.kills {
        let at = rng.below(campaign.batches as u64) as usize;
        kills_at[at] += 1;
    }

    let mut report = CrashCampaignReport::new(tree.name(), campaign);
    for &batch_kills in &kills_at {
        let ops: Vec<Op> = (0..campaign.batch_ops)
            .map(|_| {
                let line = rng.below(campaign.hot_lines);
                if rng.below(8) == 0 {
                    Op::Read { line }
                } else {
                    Op::Write { line, data: random_payload(&mut rng) }
                }
            })
            .collect();
        mem.run_batch(&ops, campaign.threads.max(1));
        if batch_kills > 0 {
            // One full-log drill pins live-state equality; the rest kill
            // at seeded byte offsets.
            drill_kill(&mem, &mut rng, &mut report, false);
            for _ in 1..batch_kills {
                drill_kill(&mem, &mut rng, &mut report, true);
            }
        }
    }

    // Crashes inside the two-phase cut: after phase one reached `prepared`
    // shards, and mid phase two after `committed` commit seals.
    for prepared in 1..=campaign.shards {
        drill_mid_cut(&mem, &mut report, prepared, 0);
    }
    for committed in 1..campaign.shards {
        drill_mid_cut(&mem, &mut report, campaign.shards, committed);
    }

    // One quarantine drill per shard.
    for victim in 0..campaign.shards {
        drill_quarantine(&mem, &mut report, victim);
    }

    // Final cut, then the clean-shutdown drill: constant work, state
    // byte-identical to the live engine.
    mem.cut();
    report.epochs_sealed = mem.epoch();
    let container = mem.sealed_container();
    let wals = mem.wals();
    report.drills += 1;
    let start = Instant::now();
    match recover_sharded_bounded(&container, &wals) {
        Ok(rec) => {
            report.latencies.push(start.elapsed());
            for shard_rec in &rec.shards {
                match &shard_rec.outcome {
                    Ok(stats) => {
                        report.record_stats(stats);
                        if stats.mode != RecoveryMode::CleanShutdown
                            || stats.replayed_txns != 0
                            || stats.verified_lines != 0
                        {
                            report.diverge(format!(
                                "shard {}: clean shutdown did non-constant work ({} txns, {} lines)",
                                shard_rec.shard, stats.replayed_txns, stats.verified_lines
                            ));
                        }
                    }
                    Err(e) => report
                        .diverge(format!("shard {} failed clean shutdown: {e}", shard_rec.shard)),
                }
            }
            for s in 0..campaign.shards {
                if persist::save_memory(rec.memory.shard(s))
                    != persist::save_memory(mem.memory().shard(s))
                {
                    report.diverge(format!("shard {s}: clean shutdown diverged from live state"));
                }
            }
        }
        Err(e) => {
            report.latencies.push(start.elapsed());
            report.diverge(format!("clean shutdown refused: {e}"));
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CrashCampaignConfig {
        CrashCampaignConfig {
            kills: 8,
            shards: 3,
            threads: 2,
            epoch_ops: 48,
            batches: 6,
            batch_ops: 24,
            hot_lines: 96,
            ..CrashCampaignConfig::default()
        }
    }

    #[test]
    fn crash_campaign_passes_on_morphtree() {
        let report = run_crash_campaign(&TreeConfig::morphtree(), &quick()).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert!(report.drills > 8, "kill + mid-cut + quarantine + clean drills");
        assert!(report.epochs_sealed >= 2, "auto-cuts must fire: {}", report.render());
        assert!(report.modes.clean >= 3, "the final drill is clean per shard");
    }

    #[test]
    fn crash_campaign_is_deterministic_modulo_latency() {
        let a = run_crash_campaign(&TreeConfig::morphtree(), &quick()).unwrap();
        let b = run_crash_campaign(&TreeConfig::morphtree(), &quick()).unwrap();
        assert_eq!(a.modes, b.modes);
        assert_eq!(a.drills, b.drills);
        assert_eq!(a.divergences, b.divergences);
        assert_eq!(a.max_replayed_txns, b.max_replayed_txns);
        assert_eq!(a.max_verified_lines, b.max_verified_lines);
    }

    #[test]
    fn crash_campaign_runs_on_every_sweep_config() {
        for (key, tree) in super::super::campaign_configs() {
            let small = CrashCampaignConfig {
                kills: 4,
                shards: 2,
                batches: 3,
                epoch_ops: 32,
                ..quick()
            };
            let report = run_crash_campaign(&tree, &small).unwrap();
            assert!(report.passed(), "{key}: {}", report.render());
        }
    }

    #[test]
    fn misconfigured_campaigns_fail_typed() {
        let tree = TreeConfig::morphtree();
        let no_work = CrashCampaignConfig { batches: 0, ..quick() };
        assert_eq!(
            run_crash_campaign(&tree, &no_work).unwrap_err(),
            CrashCampaignError::EmptyWorkload
        );
        let huge = CrashCampaignConfig { hot_lines: u64::MAX, ..quick() };
        assert!(matches!(
            run_crash_campaign(&tree, &huge).unwrap_err(),
            CrashCampaignError::WorkingSetTooLarge { .. }
        ));
        let bad_shards = CrashCampaignConfig { shards: 0, ..quick() };
        assert!(matches!(
            run_crash_campaign(&tree, &bad_shards).unwrap_err(),
            CrashCampaignError::Shard(_)
        ));
    }

    #[test]
    fn report_renders_latency_and_verdict() {
        let report = run_crash_campaign(&TreeConfig::morphtree(), &quick()).unwrap();
        let table = report.render();
        assert!(table.contains("recovery latency"), "{table}");
        assert!(table.contains("crash campaign result: PASS"), "{table}");
        assert!(!table.contains("first divergence"), "{table}");
    }
}
