//! Adversary engine: seeded, deterministic fault-injection campaigns
//! against the functional secure memory (§V of the paper).
//!
//! The paper's security argument is that *every* tamper or replay of
//! off-chip state — data ciphertext, data MACs, counter lines at any tree
//! level — is detected on the next verified read. This module turns that
//! claim into an enumerable, randomized test harness:
//!
//! - [`AttackClass`] is the taxonomy of attacks physical access to DRAM
//!   permits against a counter-mode secure memory;
//! - [`run_campaign`] fires `N` seeded attacks against a prepared victim
//!   state (cloning the victim per attack, so attacks never contaminate
//!   each other) and checks each is detected with the *correct*
//!   [`IntegrityError`] location;
//! - [`CampaignReport`] aggregates per-class detection counts and renders
//!   the summary table shown by `morphtree attack`.
//!
//! Determinism: the only randomness is an in-module SplitMix64 stream
//! seeded by [`CampaignConfig::seed`]; no `HashMap` iteration order leaks
//! into attack selection, so a fixed `(config, seed, count)` triple always
//! produces a byte-identical report.
//!
//! # Example
//!
//! ```
//! use morphtree_core::attack::{run_campaign, CampaignConfig};
//! use morphtree_core::tree::TreeConfig;
//!
//! let campaign = CampaignConfig { count: 16, ..CampaignConfig::default() };
//! let report = run_campaign(&TreeConfig::sc64(), &campaign).unwrap();
//! assert!(report.all_detected());
//! ```

pub mod crash;

pub use crash::{
    run_crash_campaign, CrashCampaignConfig, CrashCampaignError, CrashCampaignReport,
};

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::concurrent::SplitMix64;
use crate::error::{IntegrityError, TamperError};
use crate::functional::SecureMemory;
use crate::persist::{self, PersistentMemory, RecoveryError};
use crate::tree::{TreeConfig, TreeGeometry};
use crate::CACHELINE_BYTES;

/// The attack taxonomy: every way an adversary with physical access to
/// DRAM can perturb the off-chip state of a counter-mode secure memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackClass {
    /// Flip a single bit of a data line's stored ciphertext.
    DataBitFlip,
    /// Flip bits of a data line's stored MAC.
    DataMacFlip,
    /// Flip bits of a counter line's stored MAC, at a random tree level.
    CounterMacFlip,
    /// Change a counter *value* on the victim's path, at a random tree
    /// level — caught at the child the counter keys (the data MAC for
    /// level 0).
    ParentCounterTamper,
    /// Record a `{ciphertext, MAC, counter line}` tuple, let the victim
    /// overwrite the line, then restore the stale-but-self-consistent
    /// tuple.
    StaleReplay,
    /// Swap the `{ciphertext, MAC}` tuples of two data lines: each is
    /// individually authentic but bound to the wrong address.
    CrossLineSplice,
    /// Hammer one line to a counter-overflow re-encryption boundary, then
    /// tamper its freshly re-written level-0 counter.
    OverflowBoundary,
    /// Tamper the persisted snapshot image, crash the WAL writer at a
    /// random byte offset, and let recovery replay the torn log: the
    /// bottom-up re-verification of the restored tree must surface the
    /// tamper as a typed integrity error, never restore it silently.
    CrashRecovery,
}

impl AttackClass {
    /// Every attack class, in campaign round-robin order.
    pub const ALL: [AttackClass; 8] = [
        AttackClass::DataBitFlip,
        AttackClass::DataMacFlip,
        AttackClass::CounterMacFlip,
        AttackClass::ParentCounterTamper,
        AttackClass::StaleReplay,
        AttackClass::CrossLineSplice,
        AttackClass::OverflowBoundary,
        AttackClass::CrashRecovery,
    ];

    /// Stable kebab-case identifier (used in reports and CI logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::DataBitFlip => "data-bit-flip",
            AttackClass::DataMacFlip => "data-mac-flip",
            AttackClass::CounterMacFlip => "counter-mac-flip",
            AttackClass::ParentCounterTamper => "parent-counter-tamper",
            AttackClass::StaleReplay => "stale-replay",
            AttackClass::CrossLineSplice => "cross-line-splice",
            AttackClass::OverflowBoundary => "overflow-boundary",
            AttackClass::CrashRecovery => "crash-recovery",
        }
    }
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a seeded attack campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed of the deterministic attack stream.
    pub seed: u64,
    /// Number of attacks to fire (round-robin over [`AttackClass::ALL`]).
    pub count: usize,
    /// Protected-memory size of the victim (must give the tree at least
    /// one off-chip level).
    pub memory_bytes: u64,
    /// Number of data lines the victim writes before the campaign starts;
    /// attacks target this working set. Must be at least 2 (the splice
    /// attack needs two distinct lines).
    pub working_lines: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { seed: 42, count: 100, memory_bytes: 1 << 20, working_lines: 96 }
    }
}

/// Why a campaign could not run. These are harness configuration errors —
/// a completed campaign reports detection misses in its
/// [`CampaignReport`], never through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The tree has no off-chip counter level to attack (the root is
    /// on-chip and trusted, so a height-0 tree offers no counter target).
    TreeTooShallow {
        /// Display name of the offending configuration.
        config: String,
    },
    /// `working_lines < 2`: the cross-line splice needs two victims.
    WorkingSetTooSmall {
        /// The requested working-set size.
        requested: u64,
    },
    /// The working set does not fit in the protected memory.
    WorkingSetTooLarge {
        /// The requested working-set size, in lines.
        requested: u64,
        /// Data lines available at this memory size.
        available: u64,
    },
    /// An adversary hook refused an attack — a campaign-runner bug, since
    /// the runner only targets state it has itself prepared.
    Tamper(TamperError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::TreeTooShallow { config } => {
                write!(f, "tree for {config} has no off-chip level to attack")
            }
            CampaignError::WorkingSetTooSmall { requested } => {
                write!(f, "working set of {requested} lines is too small (need at least 2)")
            }
            CampaignError::WorkingSetTooLarge { requested, available } => {
                write!(
                    f,
                    "working set of {requested} lines exceeds the {available} available"
                )
            }
            CampaignError::Tamper(e) => write!(f, "attack could not be mounted: {e}"),
        }
    }
}

impl Error for CampaignError {}

impl From<TamperError> for CampaignError {
    fn from(e: TamperError) -> Self {
        CampaignError::Tamper(e)
    }
}

/// Per-class tally of a finished campaign.
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// Attacks of this class fired.
    pub attempts: usize,
    /// Attacks detected (the next read returned *some* [`IntegrityError`]).
    pub detected: usize,
    /// Attacks detected at the *expected* location (error variant, level
    /// and line all match the keyed-child prediction).
    pub located: usize,
    /// Tree levels this class exercised (empty for data-only attacks).
    pub levels: BTreeSet<usize>,
    first_miss: Option<String>,
}

/// The aggregated outcome of one [`run_campaign`] call.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    config: String,
    seed: u64,
    count: usize,
    classes: Vec<(AttackClass, ClassReport)>,
}

impl CampaignReport {
    fn new(config: &str, campaign: &CampaignConfig) -> Self {
        CampaignReport {
            config: config.to_string(),
            seed: campaign.seed,
            count: campaign.count,
            classes: AttackClass::ALL
                .iter()
                .map(|&c| (c, ClassReport::default()))
                .collect(),
        }
    }

    fn record(&mut self, outcome: &AttackOutcome) {
        // `classes` is built from ALL, so the class is always present.
        let Some((_, tally)) = self.classes.iter_mut().find(|(c, _)| *c == outcome.class)
        else {
            return;
        };
        tally.attempts += 1;
        if let Some(level) = outcome.level {
            tally.levels.insert(level);
        }
        match &outcome.observed {
            Some(err) if *err == outcome.expected => {
                tally.detected += 1;
                tally.located += 1;
            }
            Some(err) => {
                tally.detected += 1;
                if tally.first_miss.is_none() {
                    tally.first_miss =
                        Some(format!("expected {}, detected as {err}", outcome.expected));
                }
            }
            None => {
                if tally.first_miss.is_none() {
                    tally.first_miss =
                        Some(format!("UNDETECTED (expected {})", outcome.expected));
                }
            }
        }
    }

    /// Display name of the attacked configuration.
    #[must_use]
    pub fn config_name(&self) -> &str {
        &self.config
    }

    /// The per-class tallies, in [`AttackClass::ALL`] order.
    #[must_use]
    pub fn classes(&self) -> &[(AttackClass, ClassReport)] {
        &self.classes
    }

    /// Total attacks fired.
    #[must_use]
    pub fn total_attempts(&self) -> usize {
        self.classes.iter().map(|(_, t)| t.attempts).sum()
    }

    /// Total attacks detected.
    #[must_use]
    pub fn total_detected(&self) -> usize {
        self.classes.iter().map(|(_, t)| t.detected).sum()
    }

    /// Total attacks detected at the exact predicted location.
    #[must_use]
    pub fn total_located(&self) -> usize {
        self.classes.iter().map(|(_, t)| t.located).sum()
    }

    /// True iff every fired attack was detected at its predicted location.
    #[must_use]
    pub fn all_detected(&self) -> bool {
        self.total_attempts() == self.count
            && self
                .classes
                .iter()
                .all(|(_, t)| t.detected == t.attempts && t.located == t.attempts)
    }

    /// The first detection miss, if any — for diagnostics.
    #[must_use]
    pub fn first_miss(&self) -> Option<&str> {
        self.classes
            .iter()
            .find_map(|(_, t)| t.first_miss.as_deref())
    }

    /// Renders the campaign summary table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "attack campaign · {} · seed {} · {} attacks\n",
            self.config, self.seed, self.count
        ));
        out.push_str(&format!(
            "  {:<22} {:>8} {:>9} {:>8}  {}\n",
            "class", "attempts", "detected", "located", "levels"
        ));
        for (class, tally) in &self.classes {
            let levels = if tally.levels.is_empty() {
                "-".to_string()
            } else {
                tally
                    .levels
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "  {:<22} {:>8} {:>9} {:>8}  {}\n",
                class.name(),
                tally.attempts,
                tally.detected,
                tally.located,
                levels
            ));
            if let Some(miss) = &tally.first_miss {
                out.push_str(&format!("  {:<22} first miss: {miss}\n", ""));
            }
        }
        out.push_str(&format!(
            "  {:<22} {:>8} {:>9} {:>8}\n",
            "total",
            self.total_attempts(),
            self.total_detected(),
            self.total_located()
        ));
        out
    }
}

/// The five tree configurations the ISSUE-level campaign sweeps, keyed by
/// their CLI short names.
#[must_use]
pub fn campaign_configs() -> Vec<(&'static str, TreeConfig)> {
    vec![
        ("sc64", TreeConfig::sc64()),
        ("vault", TreeConfig::vault()),
        ("zcc", TreeConfig::morphtree_zcc_only()),
        ("mcr", TreeConfig::morphtree_single_base()),
        ("morphtree", TreeConfig::morphtree()),
    ]
}

/// Runs a seeded attack campaign against `tree` and tallies detection.
///
/// The victim writes [`CampaignConfig::working_lines`] random lines, then
/// the runner fires [`CampaignConfig::count`] attacks round-robin over
/// [`AttackClass::ALL`], each against a fresh clone of the victim state.
/// Counter-targeting classes additionally cycle over every off-chip tree
/// level, so a campaign of at least `8 * top_level` attacks provably
/// touches every `(class, level)` pair.
///
/// # Errors
///
/// Returns [`CampaignError`] when the campaign is misconfigured (tree too
/// shallow, working set too small or too large) — never because an attack
/// went undetected; detection misses are reported in the
/// [`CampaignReport`].
pub fn run_campaign(
    tree: &TreeConfig,
    campaign: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    if campaign.working_lines < 2 {
        return Err(CampaignError::WorkingSetTooSmall { requested: campaign.working_lines });
    }
    let mut rng = SplitMix64::new(campaign.seed);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
    key[8..].copy_from_slice(&rng.next_u64().to_le_bytes());

    let mut victim = SecureMemory::new(tree.clone(), campaign.memory_bytes, key);
    let available = victim.geometry().data_lines();
    if campaign.working_lines > available {
        return Err(CampaignError::WorkingSetTooLarge {
            requested: campaign.working_lines,
            available,
        });
    }
    let top = victim.geometry().top_level();
    if top == 0 {
        return Err(CampaignError::TreeTooShallow { config: tree.name().to_string() });
    }

    for line in 0..campaign.working_lines {
        victim.write(line, &random_payload(&mut rng));
    }

    let mut report = CampaignReport::new(tree.name(), campaign);
    for n in 0..campaign.count {
        let class = AttackClass::ALL[n % AttackClass::ALL.len()];
        let outcome = mount(&victim, class, n, campaign, &mut rng)?;
        report.record(&outcome);
    }
    Ok(report)
}

struct AttackOutcome {
    class: AttackClass,
    /// Tree level the attack targeted, for counter-directed classes.
    level: Option<usize>,
    expected: IntegrityError,
    observed: Option<IntegrityError>,
}

/// The victim's covering counter line at `level`: returns
/// `(line_idx, slot, child_idx)` where `slot` is the counter on the
/// victim's path and `child_idx` is the level-`level - 1` line it keys
/// (the data line itself for level 0).
fn covering(geom: &TreeGeometry, level: usize, data_line: u64) -> (u64, usize, u64) {
    let mut child = data_line;
    for l in 0..level {
        child = geom.parent_of(l, child).0;
    }
    let (line_idx, slot) = geom.parent_of(level, child);
    (line_idx, slot, child)
}

fn random_payload(rng: &mut SplitMix64) -> [u8; CACHELINE_BYTES] {
    let mut payload = [0u8; CACHELINE_BYTES];
    for chunk in payload.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    payload
}

fn nonzero_u64(rng: &mut SplitMix64) -> u64 {
    let mask = rng.next_u64();
    if mask == 0 { 1 } else { mask }
}

/// Mounts one attack against a fresh clone of the prepared victim and
/// observes the next verified read of the victim line.
fn mount(
    base: &SecureMemory,
    class: AttackClass,
    n: usize,
    campaign: &CampaignConfig,
    rng: &mut SplitMix64,
) -> Result<AttackOutcome, CampaignError> {
    let mut m = base.clone();
    let lines = campaign.working_lines;
    let victim_line = rng.below(lines);
    let victim_addr = victim_line * CACHELINE_BYTES as u64;
    let top = m.geometry().top_level();
    // Counter-directed classes cycle deterministically over every off-chip
    // level as the round-robin wraps, so long campaigns cover all levels.
    let cycled_level = (n / AttackClass::ALL.len()) % top;

    let mut level = None;
    let expected = match class {
        AttackClass::DataBitFlip => {
            let offset = rng.below(CACHELINE_BYTES as u64) as usize;
            let mask = 1u8 << rng.below(8);
            m.tamper_raw(victim_line, offset, mask)?;
            IntegrityError::DataMac { line_addr: victim_addr }
        }
        AttackClass::DataMacFlip => {
            let mask = nonzero_u64(rng);
            m.tamper_mac(victim_line, mask)?;
            IntegrityError::DataMac { line_addr: victim_addr }
        }
        AttackClass::CounterMacFlip => {
            level = Some(cycled_level);
            let (line_idx, _, _) = covering(m.geometry(), cycled_level, victim_line);
            let mask = nonzero_u64(rng);
            m.tamper_counter_mac(cycled_level, line_idx, mask)?;
            IntegrityError::CounterMac { level: cycled_level, line_idx }
        }
        AttackClass::ParentCounterTamper => {
            level = Some(cycled_level);
            let (line_idx, slot, child) = covering(m.geometry(), cycled_level, victim_line);
            m.tamper_counter_slot(cycled_level, line_idx, slot)?;
            if cycled_level == 0 {
                // Level-0 counters key the data MAC directly.
                IntegrityError::DataMac { line_addr: victim_addr }
            } else {
                // A level-L counter keys the MAC of its level-(L-1) child.
                IntegrityError::CounterMac { level: cycled_level - 1, line_idx: child }
            }
        }
        AttackClass::StaleReplay => {
            level = Some(0);
            let snap = m.snapshot(victim_line)?;
            let payload = random_payload(rng);
            m.write(victim_line, &payload); // the victim moves on …
            m.replay(snap); // … and the adversary rolls DRAM back.
            let (line_idx, _, _) = covering(m.geometry(), 0, victim_line);
            // The stale counter line fails its MAC: its parent advanced.
            IntegrityError::CounterMac { level: 0, line_idx }
        }
        AttackClass::CrossLineSplice => {
            let other = (victim_line + 1 + rng.below(lines - 1)) % lines;
            m.splice(victim_line, other)?;
            IntegrityError::DataMac { line_addr: victim_addr }
        }
        AttackClass::OverflowBoundary => {
            level = Some(0);
            // Hammer the victim line across a counter-overflow
            // re-encryption boundary (configs with wide minors may not
            // overflow within the cap; the tamper below is decisive either
            // way).
            let before = m.reencryptions();
            let mut writes = 0u32;
            while m.reencryptions() == before && writes < 600 {
                m.write(victim_line, &random_payload(rng));
                writes += 1;
            }
            let (line_idx, slot, _) = covering(m.geometry(), 0, victim_line);
            m.tamper_counter_slot(0, line_idx, slot)?;
            IntegrityError::DataMac { line_addr: victim_addr }
        }
        AttackClass::CrashRecovery => {
            // The adversary flips a ciphertext bit of the victim line,
            // snapshots the tampered image, then lets the machine journal
            // more writes — to a *different* line, so WAL replay cannot
            // heal the tamper — and crashes the writer at a random byte
            // offset of the log. Recovery replays the torn log (any prefix
            // restores a committed-transaction prefix) and re-verifies the
            // tree bottom-up: the tampered line must surface as a typed
            // integrity error, never load silently.
            let offset = rng.below(CACHELINE_BYTES as u64) as usize;
            let mask = 1u8 << rng.below(8);
            m.tamper_raw(victim_line, offset, mask)?;
            let snapshot = persist::save_memory(&m);
            let other = (victim_line + 1 + rng.below(lines - 1)) % lines;
            let mut journaled = PersistentMemory::from_memory(m);
            for _ in 0..3 {
                journaled.write(other, &random_payload(rng));
            }
            let wal = journaled.wal_bytes();
            let cut = rng.below(wal.len() as u64 + 1) as usize;
            let observed = match persist::recover(&snapshot, &wal[..cut]) {
                Err(RecoveryError::Integrity(err)) => Some(err),
                // A clean recovery of the tampered image (silent
                // corruption) or a mis-typed error both count as misses.
                Ok(_) | Err(_) => None,
            };
            return Ok(AttackOutcome {
                class,
                level,
                expected: IntegrityError::DataMac { line_addr: victim_addr },
                observed,
            });
        }
    };
    let observed = m.read(victim_line).err();
    Ok(AttackOutcome { class, level, expected, observed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(count: usize) -> CampaignConfig {
        CampaignConfig { count, ..CampaignConfig::default() }
    }

    #[test]
    fn every_campaign_config_detects_every_class() {
        for (key, tree) in campaign_configs() {
            // 40 = 5 full round-robin laps over the 8 classes.
            let report = run_campaign(&tree, &quick(40)).unwrap();
            assert!(
                report.all_detected(),
                "{key}: {}\n{}",
                report.first_miss().unwrap_or("??"),
                report.render()
            );
            assert_eq!(report.total_attempts(), 40);
            for (_, tally) in report.classes() {
                assert!(tally.attempts == 5, "{key}: round-robin should be even");
            }
        }
    }

    #[test]
    fn counter_classes_cover_every_offchip_level() {
        let tree = TreeConfig::sgx(); // deepest tree at 1 MiB
        let campaign = quick(8 * 16);
        let report = run_campaign(&tree, &campaign).unwrap();
        let mem = SecureMemory::new(tree, campaign.memory_bytes, [0; 16]);
        let top = mem.geometry().top_level();
        assert!(top >= 2, "want a multi-level tree, got top {top}");
        let want: BTreeSet<usize> = (0..top).collect();
        for (class, tally) in report.classes() {
            if matches!(
                class,
                AttackClass::CounterMacFlip | AttackClass::ParentCounterTamper
            ) {
                assert_eq!(tally.levels, want, "{class} must cycle all levels");
            }
        }
        assert!(report.all_detected(), "{}", report.render());
    }

    #[test]
    fn campaigns_are_deterministic_for_a_fixed_seed() {
        let tree = TreeConfig::morphtree();
        let a = run_campaign(&tree, &quick(21)).unwrap();
        let b = run_campaign(&tree, &quick(21)).unwrap();
        assert_eq!(a.render(), b.render());
        let other_seed = CampaignConfig { seed: 7, count: 21, ..CampaignConfig::default() };
        let c = run_campaign(&tree, &other_seed).unwrap();
        assert!(c.all_detected());
    }

    #[test]
    fn misconfigured_campaigns_fail_with_typed_errors() {
        let tree = TreeConfig::sc64();
        let tiny = CampaignConfig { working_lines: 1, ..CampaignConfig::default() };
        assert_eq!(
            run_campaign(&tree, &tiny).unwrap_err(),
            CampaignError::WorkingSetTooSmall { requested: 1 }
        );
        let huge = CampaignConfig {
            working_lines: u64::MAX,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run_campaign(&tree, &huge).unwrap_err(),
            CampaignError::WorkingSetTooLarge { .. }
        ));
        // 128 data lines under a 128-ary tree: the root is the only
        // counter level, and it is on-chip — nothing off-chip to attack.
        let shallow = CampaignConfig {
            memory_bytes: 128 * 64,
            working_lines: 2,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run_campaign(&TreeConfig::morphtree(), &shallow).unwrap_err(),
            CampaignError::TreeTooShallow { .. }
        ));
    }

    #[test]
    fn report_renders_a_summary_table() {
        let report = run_campaign(&TreeConfig::sc64(), &quick(16)).unwrap();
        let table = report.render();
        assert!(table.contains("SC-64"), "{table}");
        for class in AttackClass::ALL {
            assert!(table.contains(class.name()), "{table}");
        }
        assert!(table.contains("total"), "{table}");
        assert!(!table.contains("first miss"), "{table}");
    }
}
