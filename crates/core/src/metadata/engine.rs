//! The metadata engine: tree walks, counter increments, overflow handling
//! and write propagation (§II-B, §VII-B).

use super::cache::{MetadataCache, ReplacementPolicy};
use super::stats::{AccessCategory, EngineStats, MemAccess};
use crate::counters::morph::MorphLine;
use crate::counters::split::{SplitConfig, SplitLine};
use crate::counters::{CounterLine, CounterOrg, IncrementOutcome, Line};
use crate::error::CodecError;
use crate::store::PagedStore;
use crate::tree::{TreeConfig, TreeGeometry};
use crate::CACHELINE_BYTES;

/// How MACs of data lines are stored (§VII-I, Fig 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MacMode {
    /// Synergy-style in-line MACs in the ECC chip: no extra traffic (the
    /// configuration used for all main results).
    #[default]
    Inline,
    /// MACs stored separately: one extra access per data access.
    Separate,
}

/// When is a data read allowed to return (§VIII-B2 discusses the design
/// space)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerificationMode {
    /// SGX-style: the read completes only after its counter-fetch chain —
    /// counter fetches gate the data return (the paper's model, and ours
    /// by default).
    #[default]
    Strict,
    /// PoisonIvy/ASE-style safe speculation: data returns immediately and
    /// verification proceeds in the background. Metadata fetches still
    /// consume bandwidth — the overhead the paper says speculation cannot
    /// remove — but no longer gate the critical path.
    Speculative,
}

/// Bundle of secondary engine knobs (each defaults to the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOptions {
    /// MAC organization (Fig 20).
    pub mac_mode: MacMode,
    /// Whether counter fetches gate data returns (§VIII-B2 ablation).
    pub verification: VerificationMode,
    /// Metadata-cache victim selection (§VIII-B2 ablation).
    pub replacement: ReplacementPolicy,
}

/// Recursion backstop: a writeback chain ascends a level each step, so any
/// depth beyond this indicates a pathological cache configuration; the
/// engine then falls back to an uncached read-modify-write for the parent.
const MAX_CHAIN_DEPTH: usize = 64;

/// Per-level constants the hot path needs, precomputed at construction so
/// the walk neither chases `TreeGeometry` indirections nor divides:
/// practical arities are powers of two, so child→parent maps to a shift
/// and a mask instead of a hardware division.
#[derive(Debug, Clone, Copy)]
struct LevelMeta {
    base_addr: u64,
    lines: u64,
    arity: u64,
    /// `log2(arity)` when the arity is a power of two.
    arity_shift: Option<u32>,
    /// Counter organization, for allocating absent lines without chasing
    /// the config on every bump.
    org: crate::counters::CounterOrg,
}

/// The secure-memory metadata controller.
///
/// Owns the per-level counter stores (the union of DRAM and cache state),
/// the dedicated metadata cache, and the traffic statistics. Each
/// [`MetadataEngine::read`] / [`MetadataEngine::write`] call appends the
/// memory accesses the event generates to the caller's buffer.
///
/// # Example
///
/// ```
/// use morphtree_core::metadata::{MetadataEngine, MacMode};
/// use morphtree_core::tree::TreeConfig;
///
/// let mut engine = MetadataEngine::new(
///     TreeConfig::sc64(),
///     1 << 30,     // 1 GiB protected
///     128 * 1024,  // 128 KB metadata cache
///     MacMode::Inline,
/// );
/// let mut accesses = Vec::new();
/// engine.read(0, &mut accesses);
/// // A cold read fetches the data line plus a counter chain.
/// assert!(accesses.len() > 1);
/// ```
#[derive(Debug)]
pub struct MetadataEngine {
    config: TreeConfig,
    geometry: TreeGeometry,
    cache: MetadataCache,
    /// Counter lines per level, keyed by line index, created lazily
    /// (all-zero). Line indices are dense and bounded by the geometry, so a
    /// paged flat store replaces the seed's `HashMap` with O(1) unhashed
    /// access (see [`crate::store`]).
    levels: Vec<PagedStore<Line>>,
    /// Hot-path copy of the per-level geometry (see [`LevelMeta`]).
    level_meta: Vec<LevelMeta>,
    stats: EngineStats,
    mac_mode: MacMode,
    verification: VerificationMode,
    mac_base: u64,
    /// Hot-path copies of [`TreeGeometry::top_level`] and
    /// [`TreeGeometry::data_lines`].
    top_level: usize,
    data_lines: u64,
    /// Reusable `(address, level)` buffer for the upward tree walk. The
    /// seed engine heap-allocated a `Vec<u64>` per cache miss and then
    /// *re-derived* each address's level with a linear
    /// `TreeGeometry::locate` scan; the walk already knows the level, so
    /// carrying it alongside the address in a persistent buffer removes
    /// both the allocation and the reverse lookup from the hottest loop in
    /// the simulator.
    fetch_scratch: Vec<(u64, u8)>,
}

impl MetadataEngine {
    /// Creates an engine for `config` protecting `memory_bytes` of data,
    /// with a `cache_bytes` 8-way metadata cache.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or cache parameters (see
    /// [`TreeGeometry::new`] and [`MetadataCache::new`]).
    #[must_use]
    pub fn new(
        config: TreeConfig,
        memory_bytes: u64,
        cache_bytes: usize,
        mac_mode: MacMode,
    ) -> Self {
        Self::with_options(
            config,
            memory_bytes,
            cache_bytes,
            EngineOptions { mac_mode, ..EngineOptions::default() },
        )
    }

    /// Like [`MetadataEngine::new`] with an explicit verification mode.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or cache parameters.
    #[must_use]
    pub fn with_verification(
        config: TreeConfig,
        memory_bytes: u64,
        cache_bytes: usize,
        mac_mode: MacMode,
        verification: VerificationMode,
    ) -> Self {
        Self::with_options(
            config,
            memory_bytes,
            cache_bytes,
            EngineOptions { mac_mode, verification, ..EngineOptions::default() },
        )
    }

    /// Like [`MetadataEngine::new`] with the full set of secondary knobs.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or cache parameters.
    #[must_use]
    pub fn with_options(
        config: TreeConfig,
        memory_bytes: u64,
        cache_bytes: usize,
        options: EngineOptions,
    ) -> Self {
        let geometry = TreeGeometry::new(&config, memory_bytes);
        let num_levels = geometry.levels().len();
        let mac_base = geometry.levels().last().map_or(0, |last| last.base_addr + last.bytes());
        let level_meta = geometry
            .levels()
            .iter()
            .enumerate()
            .map(|(idx, level)| LevelMeta {
                base_addr: level.base_addr,
                lines: level.lines,
                arity: level.arity as u64,
                arity_shift: (level.arity as u64)
                    .is_power_of_two()
                    .then(|| (level.arity as u64).trailing_zeros()),
                org: config.org(idx),
            })
            .collect();
        MetadataEngine {
            config,
            cache: MetadataCache::with_policy(cache_bytes, 8, options.replacement),
            levels: geometry
                .levels()
                .iter()
                .map(|level| PagedStore::new(level.lines))
                .collect(),
            level_meta,
            stats: EngineStats::new(num_levels),
            mac_mode: options.mac_mode,
            verification: options.verification,
            top_level: geometry.top_level(),
            data_lines: geometry.data_lines(),
            geometry,
            mac_base,
            fetch_scratch: Vec::new(),
        }
    }

    /// Hot-path equivalent of [`TreeGeometry::parent_of`].
    #[inline]
    fn parent_of_fast(&self, level: usize, child_idx: u64) -> (u64, usize) {
        let m = &self.level_meta[level];
        match m.arity_shift {
            Some(shift) => (child_idx >> shift, (child_idx & (m.arity - 1)) as usize),
            None => (child_idx / m.arity, (child_idx % m.arity) as usize),
        }
    }

    /// Hot-path equivalent of [`TreeGeometry::line_addr`].
    #[inline]
    fn line_addr_fast(&self, level: usize, idx: u64) -> u64 {
        let m = &self.level_meta[level];
        debug_assert!(idx < m.lines, "line {idx} out of range at level {level}");
        m.base_addr + idx * CACHELINE_BYTES as u64
    }

    /// The tree configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// The tree geometry.
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// The metadata cache (for occupancy inspection in tests/tools).
    #[must_use]
    pub fn cache(&self) -> &MetadataCache {
        &self.cache
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Clears statistics while keeping counter and cache state — used to
    /// measure after warm-up, as the paper does (§VI).
    pub fn reset_stats(&mut self) {
        let levels = self.levels.len();
        self.stats = EngineStats::new(levels);
        self.cache.reset_stats();
    }

    /// Effective counter value covering `child_idx` at `level` (a data-line
    /// index when `level == 0`). Zero if the line was never touched.
    #[must_use]
    pub fn counter_value(&self, level: usize, child_idx: u64) -> u64 {
        let (line_idx, slot) = self.geometry.parent_of(level, child_idx);
        self.levels[level]
            .get(line_idx)
            .map_or(0, |line| line.get(slot))
    }

    // ------------------------------------------------------------------
    // Persistence hooks (`crate::persist`): export/restore of the full
    // engine state — counter lines, cache residency, statistics — so a
    // resumed engine continues access-for-access identically.
    // ------------------------------------------------------------------

    /// MAC organization in use.
    pub(crate) fn mac_mode(&self) -> MacMode {
        self.mac_mode
    }

    /// Verification mode in use.
    pub(crate) fn verification(&self) -> VerificationMode {
        self.verification
    }

    /// The counter-line stores per level, for snapshot export.
    pub(crate) fn level_stores(&self) -> &[PagedStore<Line>] {
        &self.levels
    }

    /// Mutable cache access for residency restore.
    pub(crate) fn cache_mut(&mut self) -> &mut MetadataCache {
        &mut self.cache
    }

    /// Restores a counter line from its encoded image, decoding it under
    /// the level's configured organization. The caller must have validated
    /// `level` and `line_idx` against the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the image is not a valid encoding for
    /// the level's counter organization.
    pub(crate) fn restore_line(
        &mut self,
        level: usize,
        line_idx: u64,
        image: &[u8; CACHELINE_BYTES],
    ) -> Result<(), CodecError> {
        let line = match self.config.org(level) {
            CounterOrg::Split { arity } => {
                Line::from(SplitLine::decode(SplitConfig::with_arity(arity), image))
            }
            CounterOrg::Morph(mode) => Line::from(MorphLine::decode(mode, image)?),
        };
        self.levels[level].insert(line_idx, line);
        Ok(())
    }

    /// Overwrites the statistics (restored alongside the counter state).
    pub(crate) fn set_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }

    /// A data read arriving at the memory controller (an LLC miss).
    ///
    /// Emits the data access, any separate-MAC access, and the counter
    /// fetch chain if the encryption counter misses in the metadata cache.
    pub fn read(&mut self, data_line: u64, out: &mut Vec<MemAccess>) {
        assert!(data_line < self.data_lines, "data line out of range");
        self.stats.data_reads += 1;
        self.emit(out, data_line * CACHELINE_BYTES as u64, false, AccessCategory::Data, true);
        if self.mac_mode == MacMode::Separate {
            let mac_addr = self.mac_base + (data_line / 8) * CACHELINE_BYTES as u64;
            self.emit(out, mac_addr, false, AccessCategory::Mac, true);
        }
        let (enc_line, _) = self.parent_of_fast(0, data_line);
        self.ensure_cached(0, enc_line, out, 0);
    }

    /// A data write arriving at the memory controller (a dirty LLC
    /// eviction): increments the encryption counter, which may overflow.
    pub fn write(&mut self, data_line: u64, out: &mut Vec<MemAccess>) {
        assert!(data_line < self.data_lines, "data line out of range");
        self.stats.data_writes += 1;
        self.emit(out, data_line * CACHELINE_BYTES as u64, true, AccessCategory::Data, false);
        if self.mac_mode == MacMode::Separate {
            let mac_addr = self.mac_base + (data_line / 8) * CACHELINE_BYTES as u64;
            self.emit(out, mac_addr, true, AccessCategory::Mac, false);
        }
        self.bump_counter(0, data_line, out, 0);
    }

    fn emit(
        &mut self,
        out: &mut Vec<MemAccess>,
        addr: u64,
        is_write: bool,
        category: AccessCategory,
        critical: bool,
    ) {
        let access = MemAccess { addr, is_write, category, critical };
        self.stats.record(&access);
        out.push(access);
    }

    /// Number of children actually covered by line `line_idx` at `level`
    /// (the last line of a level may be partial).
    fn children_count(&self, level: usize, line_idx: u64) -> usize {
        let total = if level == 0 {
            self.data_lines
        } else {
            self.level_meta[level - 1].lines
        };
        let arity = self.level_meta[level].arity;
        (total - line_idx * arity).min(arity) as usize
    }

    fn line_mut(&mut self, level: usize, line_idx: u64) -> &mut Line {
        let org = self.level_meta[level].org;
        self.levels[level].get_or_insert_with(line_idx, || org.new_line())
    }

    /// Brings the counter line at (`level`, `line_idx`) into the metadata
    /// cache, fetching the tree chain above it as needed. Tree-node
    /// addresses are address-computable, so the whole chain issues in
    /// parallel; every fetch is marked critical. The common case — the
    /// line is already cached — is a single probe.
    fn ensure_cached(&mut self, level: usize, line_idx: u64, out: &mut Vec<MemAccess>, depth: usize) {
        if level >= self.top_level {
            // The root is pinned on-chip and never fetched.
            return;
        }
        let addr = self.line_addr_fast(level, line_idx);
        if !self.cache.probe_level(addr, level as u8) {
            self.fetch_chain(level, line_idx, addr, out, depth);
        }
    }

    /// Continuation of [`MetadataEngine::ensure_cached`] after `addr` (the
    /// line at `level`/`line_idx`) missed: emits its fetch, walks the
    /// ancestor chain until a cached level, and inserts the fetched lines
    /// top-down so the requested line ends most-recently-used.
    fn fetch_chain(
        &mut self,
        level: usize,
        line_idx: u64,
        addr: u64,
        out: &mut Vec<MemAccess>,
        depth: usize,
    ) {
        let top = self.top_level;
        let gates = self.verification == VerificationMode::Strict;
        // Take the scratch buffer so the insertion loop below can call back
        // into `self`; a recursive walk (dirty eviction during the fill)
        // simply starts from an empty buffer of its own.
        let mut fetched = std::mem::take(&mut self.fetch_scratch);
        fetched.clear();
        self.emit(out, addr, false, AccessCategory::for_level(level), gates);
        fetched.push((addr, level as u8));
        let (mut idx, _) = self.parent_of_fast(level + 1, line_idx);
        let mut l = level + 1;
        while l < top {
            let addr = self.line_addr_fast(l, idx);
            if self.cache.probe_level(addr, l as u8) {
                break;
            }
            self.emit(out, addr, false, AccessCategory::for_level(l), gates);
            fetched.push((addr, l as u8));
            let (parent_idx, _) = self.parent_of_fast(l + 1, idx);
            l += 1;
            idx = parent_idx;
        }
        // Chain-depth distribution: how far this miss had to walk before
        // hitting a cached ancestor (or the pinned root).
        self.stats.fetch_depths.record(fetched.len() as u64);
        // The fetched chain is verified as one batched MAC group (the
        // functional plane's `mac_lines`): count the group so
        // `mac_ops / mac_batches` exposes the batch depth.
        if !fetched.is_empty() {
            self.stats.mac_batches += 1;
        }
        // The walk recorded each line's level, so no reverse lookup is
        // needed to insert.
        for &(addr, lvl) in fetched.iter().rev() {
            if let Some(evicted) = self.cache.insert_with_priority(addr, false, lvl) {
                if evicted.dirty {
                    self.writeback(evicted.addr, evicted.priority, out, depth);
                }
            }
        }
        self.fetch_scratch = fetched;
    }

    /// Writes a dirty metadata line back to memory and propagates the write
    /// to its parent counter — the §II-C mechanism. `level` is the evicted
    /// line's cache priority, which the engine always sets to its tree
    /// level, so the line index follows from the level's base address.
    fn writeback(&mut self, addr: u64, level: u8, out: &mut Vec<MemAccess>, depth: usize) {
        let level = level as usize;
        let base = self.level_meta[level].base_addr;
        debug_assert!(addr >= base, "priority disagrees with address layout");
        let idx = (addr - base) / CACHELINE_BYTES as u64;
        self.emit(out, addr, true, AccessCategory::for_level(level), false);
        self.bump_counter(level + 1, idx, out, depth + 1);
    }

    /// Increments the counter at `level` covering `child_idx`, handling
    /// caching, dirtiness and overflows.
    fn bump_counter(&mut self, level: usize, child_idx: u64, out: &mut Vec<MemAccess>, depth: usize) {
        let top = self.top_level;
        debug_assert!(level <= top, "bump beyond the root");
        let (line_idx, slot) = self.parent_of_fast(level, child_idx);

        if level < top {
            if depth < MAX_CHAIN_DEPTH {
                let addr = self.line_addr_fast(level, line_idx);
                // Fused probe + dirty refresh: the hit path (the common
                // case) is one cache lookup instead of two.
                if !self.cache.touch_dirty(addr, level as u8) {
                    self.fetch_chain(level, line_idx, addr, out, depth);
                    if let Some(evicted) =
                        self.cache.insert_with_priority(addr, true, level as u8)
                    {
                        if evicted.dirty {
                            self.writeback(evicted.addr, evicted.priority, out, depth);
                        }
                    }
                }
            } else {
                // Backstop for pathological cache shapes: uncached RMW.
                let addr = self.line_addr_fast(level, line_idx);
                self.emit(out, addr, false, AccessCategory::for_level(level), false);
                self.emit(out, addr, true, AccessCategory::for_level(level), false);
            }
        }
        // The root (level == top) is pinned on-chip: no traffic to update it.

        let arity = self.level_meta[level].arity as usize;
        let outcome = self.line_mut(level, line_idx).increment(slot);
        match outcome {
            IncrementOutcome::Ok => {}
            IncrementOutcome::Rebased => self.stats.record_rebase(level),
            IncrementOutcome::Overflow(event) => {
                self.stats
                    .record_overflow_kind(level, event.used_counters, arity, event.kind);
                self.handle_overflow(level, line_idx, event.span, out);
            }
        }
        if level < top && depth >= MAX_CHAIN_DEPTH {
            // The uncached RMW path above already wrote the line back, but
            // its parent still observed a write.
            self.bump_counter(level + 1, line_idx, out, depth + 1);
        }
    }

    /// Charges the re-encryption (level 0) or re-hash (level > 0) traffic
    /// of an overflow: one read and one write per affected child.
    fn handle_overflow(
        &mut self,
        level: usize,
        line_idx: u64,
        span: crate::counters::ReencryptSpan,
        out: &mut Vec<MemAccess>,
    ) {
        let arity = self.level_meta[level].arity;
        let children = self.children_count(level, line_idx) as u64;
        for slot in span.slots(arity as usize) {
            let child = line_idx * arity + slot as u64;
            if slot as u64 >= children {
                break;
            }
            let child_addr = if level == 0 {
                child * CACHELINE_BYTES as u64
            } else {
                self.geometry.line_addr(level - 1, child)
            };
            self.emit(out, child_addr, false, AccessCategory::Overflow, false);
            self.emit(out, child_addr, true, AccessCategory::Overflow, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    fn engine(config: TreeConfig) -> MetadataEngine {
        MetadataEngine::new(config, 64 * MIB, 8 * 1024, MacMode::Inline)
    }

    fn categories(accesses: &[MemAccess]) -> Vec<AccessCategory> {
        accesses.iter().map(|a| a.category).collect()
    }

    #[test]
    fn cold_read_walks_the_whole_tree() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        e.read(0, &mut out);
        // 64 MiB / SC-64: enc + L1 + L2 levels below a single-line root.
        let cats = categories(&out);
        assert_eq!(
            cats,
            vec![
                AccessCategory::Data,
                AccessCategory::CtrEncr,
                AccessCategory::Ctr1,
                AccessCategory::Ctr2,
            ]
        );
        assert!(out.iter().all(|a| !a.is_write));
        assert!(out.iter().all(|a| a.critical));
    }

    #[test]
    fn warm_read_touches_only_data() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        e.read(0, &mut out);
        out.clear();
        e.read(1, &mut out); // same counter line covers lines 0..64
        assert_eq!(categories(&out), vec![AccessCategory::Data]);
    }

    #[test]
    fn partially_warm_read_stops_at_cached_level() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        e.read(0, &mut out);
        out.clear();
        // Data line 64 uses encryption-counter line 1, which shares the
        // already-cached L1 line 0.
        e.read(64, &mut out);
        assert_eq!(
            categories(&out),
            vec![AccessCategory::Data, AccessCategory::CtrEncr]
        );
    }

    #[test]
    fn write_increments_the_encryption_counter() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        e.write(5, &mut out);
        assert_eq!(e.counter_value(0, 5), 1);
        assert_eq!(e.counter_value(0, 6), 0);
        assert_eq!(out[0].category, AccessCategory::Data);
        assert!(out[0].is_write);
        // The enc line had to be fetched (chain reads), but no writes yet:
        // the dirty counter line sits in the cache.
        assert!(out[1..].iter().all(|a| !a.is_write));
    }

    #[test]
    fn sc64_overflow_costs_64_reads_and_64_writes() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        for _ in 0..63 {
            e.write(0, &mut out);
        }
        out.clear();
        e.write(0, &mut out);
        let overflow: Vec<&MemAccess> = out
            .iter()
            .filter(|a| a.category == AccessCategory::Overflow)
            .collect();
        assert_eq!(overflow.len(), 128, "64 reads + 64 writes");
        assert_eq!(overflow.iter().filter(|a| a.is_write).count(), 64);
        assert_eq!(e.stats().overflows_by_level[0], 1);
        // The re-encrypted children are the 64 data lines under the counter.
        assert!(overflow.iter().all(|a| a.addr < 64 * 64));
    }

    #[test]
    fn overflow_span_clamped_to_real_children() {
        // 96 data lines under SC-64: line 1 covers only 32 children.
        let mut e = MetadataEngine::new(
            TreeConfig::sc64(),
            96 * CACHELINE_BYTES as u64,
            4096,
            MacMode::Inline,
        );
        let mut out = Vec::new();
        for _ in 0..64 {
            e.write(64, &mut out);
        }
        let overflow = out
            .iter()
            .filter(|a| a.category == AccessCategory::Overflow)
            .count();
        assert_eq!(overflow, 64, "32 children -> 32 reads + 32 writes");
    }

    #[test]
    fn dirty_eviction_propagates_to_parent_counter() {
        // A cache with 8 sets x 8 ways; walk enough distinct counter lines
        // to force dirty evictions.
        let mut e = MetadataEngine::new(TreeConfig::sc64(), 64 * MIB, 4096, MacMode::Inline);
        let mut out = Vec::new();
        // Dirty many distinct enc lines: data lines 64 apart map to
        // different counter lines.
        for i in 0..200 {
            e.write(i * 64, &mut out);
        }
        // Some enc line must have been evicted dirty, writing back and
        // bumping its L1 parent.
        let ctr_writes = e.stats().writes[2]; // CtrEncr index
        assert!(ctr_writes > 0, "expected dirty counter writebacks");
        let l1_value: u64 = (0..e.geometry().levels()[1].lines)
            .map(|i| e.counter_value(1, i))
            .sum();
        assert!(l1_value > 0, "L1 counters should have advanced");
    }

    #[test]
    fn root_is_pinned_and_generates_no_traffic() {
        // Tiny memory: enc level has 2 lines, root is level 1.
        let mut e = MetadataEngine::new(
            TreeConfig::sc64(),
            128 * CACHELINE_BYTES as u64,
            4096,
            MacMode::Inline,
        );
        assert_eq!(e.geometry().top_level(), 1);
        let mut out = Vec::new();
        e.read(0, &mut out);
        // Chain: data + enc line fetch; root never fetched.
        assert_eq!(
            categories(&out),
            vec![AccessCategory::Data, AccessCategory::CtrEncr]
        );
    }

    #[test]
    fn separate_macs_add_one_access_per_data_access() {
        let mut e = MetadataEngine::new(TreeConfig::sc64(), 64 * MIB, 8192, MacMode::Separate);
        let mut out = Vec::new();
        e.read(0, &mut out);
        assert_eq!(out[1].category, AccessCategory::Mac);
        out.clear();
        e.write(0, &mut out);
        assert_eq!(out[1].category, AccessCategory::Mac);
        assert!(out[1].is_write);
    }

    #[test]
    fn morphtree_rebases_instead_of_overflowing_on_dense_writes() {
        let mut e = engine(TreeConfig::morphtree());
        let mut out = Vec::new();
        // Round-robin writes over one counter line's 128 children.
        for round in 0..20 {
            for child in 0..128u64 {
                e.write(child, &mut out);
            }
            let _ = round;
        }
        let stats = e.stats();
        assert_eq!(stats.overflows_by_level[0], 0, "rebasing should absorb");
        assert!(stats.rebases_by_level[0] > 0);
    }

    #[test]
    fn sc128_overflows_far_more_than_sc64_under_hot_writes() {
        let mut hot64 = engine(TreeConfig::sc64());
        let mut hot128 = engine(TreeConfig::sc128());
        let mut out = Vec::new();
        for _ in 0..1024 {
            hot64.write(0, &mut out);
            hot128.write(0, &mut out);
        }
        let o64 = hot64.stats().overflows_by_level[0];
        let o128 = hot128.stats().overflows_by_level[0];
        // After an overflow the hot slot restarts at 1, so the steady-state
        // period is 2^b - 1 writes: 63 for SC-64, 7 for SC-128.
        assert_eq!(o64, 1 + (1024 - 64) / 63);
        assert_eq!(o128, 1 + (1024 - 8) / 7);
        assert!(o128 > 8 * o64, "paper's ~8x gap: {o128} vs {o64}");
    }

    #[test]
    fn stats_reset_keeps_counter_state() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        e.write(0, &mut out);
        e.reset_stats();
        assert_eq!(e.stats().data_accesses(), 0);
        assert_eq!(e.counter_value(0, 0), 1, "counter state preserved");
    }

    #[test]
    fn traffic_metric_counts_all_categories() {
        let mut e = engine(TreeConfig::sc64());
        let mut out = Vec::new();
        e.read(0, &mut out);
        let s = e.stats();
        assert!(s.traffic_per_data_access() >= 1.0);
        assert_eq!(s.total_accesses() as usize, out.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_rejects_out_of_range_lines() {
        let mut e = MetadataEngine::new(
            TreeConfig::sc64(),
            128 * CACHELINE_BYTES as u64,
            4096,
            MacMode::Inline,
        );
        let mut out = Vec::new();
        e.read(128, &mut out);
    }
}
