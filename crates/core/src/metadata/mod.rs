//! The secure-memory metadata engine.
//!
//! This module models what the memory controller of a secure processor does
//! on every data access (§II-B):
//!
//! - on a **read**, the encryption counter line must be on-chip; a miss
//!   fetches it and walks the integrity tree upward until a cached level
//!   (or the pinned root) is found;
//! - on a **write**, the encryption counter is incremented, possibly
//!   overflowing (re-encryption traffic proportional to arity);
//! - a **dirty eviction** of a metadata line writes it back and increments
//!   its parent counter — the mechanism by which writes propagate up the
//!   tree, and stop at whatever level stays resident in the cache.
//!
//! The engine is *timing-free*: each event yields a list of
//! [`stats::MemAccess`]es tagged with the exact traffic categories of the
//! paper's Fig 16 (`Data`, `Ctr_Encr`, `Ctr_1`, `Ctr_2`, `Ctr_3&Up`,
//! `Overflow`, plus `Mac` for the separate-MAC ablation of Fig 20). The
//! timing simulator replays those accesses into the DRAM model; analyses
//! like Fig 7/11/14 read the engine's statistics directly.

pub mod cache;
pub mod engine;
pub mod reference;
pub mod stats;

pub use cache::{CacheStats, MetadataCache, ReplacementPolicy, STAT_LEVELS};
pub use engine::{EngineOptions, MacMode, MetadataEngine, VerificationMode};
pub use reference::ReferenceEngine;
pub use stats::{AccessCategory, EngineStats, MemAccess};
