//! The dedicated on-chip metadata cache (Table I: 128 KB, 8-way, 64 B
//! lines, shared by encryption and integrity-tree counters).

use crate::CACHELINE_BYTES;

/// Victim-selection policy.
///
/// `LevelAware` implements the metadata type-aware replacement idea of
/// Lee et al. (§VIII-B2 related work): higher-priority lines (higher tree
/// levels, which cover exponentially more memory) are preferred for
/// retention; among the lowest-priority resident lines the LRU one is
/// evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Pure least-recently-used (the paper's model, and ours by default).
    #[default]
    Lru,
    /// Evict the least-recently-used line of the lowest priority class.
    LevelAware,
}

/// A line evicted from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Address of the evicted line.
    pub addr: u64,
    /// Whether it was dirty (and therefore needs a write-back, which in a
    /// secure memory also bumps the parent counter).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: u64,
    dirty: bool,
    priority: u8,
}

/// A set-associative, write-back, LRU cache keyed by line address.
///
/// Only tags and dirty bits are modeled — the line *contents* live in the
/// engine's counter store, which represents the union of memory and cache
/// state.
///
/// # Example
///
/// ```
/// use morphtree_core::metadata::MetadataCache;
///
/// let mut cache = MetadataCache::new(8 * 1024, 8);
/// assert!(!cache.probe(0x1000));
/// cache.insert(0x1000, false);
/// assert!(cache.probe(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    /// `sets[i]` is ordered LRU → MRU.
    sets: Vec<Vec<Entry>>,
    ways: usize,
    policy: ReplacementPolicy,
    hits: u64,
    misses: u64,
}

impl MetadataCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * CACHELINE_BYTES`.
    #[must_use]
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        Self::with_policy(capacity_bytes, ways, ReplacementPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * CACHELINE_BYTES`.
    #[must_use]
    pub fn with_policy(capacity_bytes: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways >= 1);
        let lines = capacity_bytes / CACHELINE_BYTES;
        assert!(
            lines >= ways && capacity_bytes.is_multiple_of(ways * CACHELINE_BYTES),
            "capacity {capacity_bytes} incompatible with {ways} ways"
        );
        let num_sets = lines / ways;
        MetadataCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            policy,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.sets.len() * self.ways * CACHELINE_BYTES
    }

    /// Demand hits recorded by [`MetadataCache::probe`].
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses recorded by [`MetadataCache::probe`].
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / CACHELINE_BYTES as u64) % self.sets.len() as u64) as usize
    }

    /// Looks up `addr`, updating recency and hit/miss statistics.
    pub fn probe(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|e| e.addr == addr) {
            let entry = entries.remove(pos);
            entries.push(entry);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Non-destructive lookup: no recency or statistics update.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        self.sets[set].iter().any(|e| e.addr == addr)
    }

    /// Inserts `addr` as most-recently-used, returning the victim if the
    /// set was full. Re-inserting a resident line refreshes recency and
    /// ORs the dirty bit.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Option<EvictedLine> {
        self.insert_with_priority(addr, dirty, 0)
    }

    /// Like [`MetadataCache::insert`], tagging the line with a retention
    /// priority (the metadata level). Under [`ReplacementPolicy::Lru`] the
    /// priority is recorded but ignored for victim selection.
    pub fn insert_with_priority(
        &mut self,
        addr: u64,
        dirty: bool,
        priority: u8,
    ) -> Option<EvictedLine> {
        let set = self.set_index(addr);
        let ways = self.ways;
        let policy = self.policy;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|e| e.addr == addr) {
            let mut entry = entries.remove(pos);
            entry.dirty |= dirty;
            entry.priority = entry.priority.max(priority);
            entries.push(entry);
            return None;
        }
        let victim = if entries.len() == ways {
            let pos = match policy {
                ReplacementPolicy::Lru => 0,
                ReplacementPolicy::LevelAware => {
                    // LRU among the lowest-priority class (vector order is
                    // LRU -> MRU, and `min_by_key` keeps the first of equal
                    // minima, i.e. the LRU one).
                    entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.priority)
                        .map_or(0, |(pos, _)| pos)
                }
            };
            let v = entries.remove(pos);
            Some(EvictedLine { addr: v.addr, dirty: v.dirty })
        } else {
            None
        };
        entries.push(Entry { addr, dirty, priority });
        victim
    }

    /// Marks a resident line dirty; returns whether it was resident.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        if let Some(entry) = self.sets[set].iter_mut().find(|e| e.addr == addr) {
            entry.dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes `addr` if resident, returning its dirty bit.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_index(addr);
        let entries = &mut self.sets[set];
        entries
            .iter()
            .position(|e| e.addr == addr)
            .map(|pos| entries.remove(pos).dirty)
    }

    /// Drops all contents and statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of resident lines.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MetadataCache {
        // 2 sets x 2 ways.
        MetadataCache::new(4 * CACHELINE_BYTES, 2)
    }

    fn addr_in_set(cache: &MetadataCache, set: usize, k: u64) -> u64 {
        (set as u64 + k * cache.num_sets() as u64) * CACHELINE_BYTES as u64
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        assert!(!c.probe(a));
        c.insert(a, false);
        assert!(c.probe(a));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(a, false);
        c.insert(b, false);
        // Touch `a` so `b` becomes LRU.
        assert!(c.probe(a));
        let victim = c.insert(d, false).expect("set full");
        assert_eq!(victim.addr, b);
        assert!(c.contains(a));
        assert!(c.contains(d));
    }

    #[test]
    fn eviction_reports_dirty_bit() {
        let mut c = tiny();
        let a = addr_in_set(&c, 1, 0);
        let b = addr_in_set(&c, 1, 1);
        let d = addr_in_set(&c, 1, 2);
        c.insert(a, true);
        c.insert(b, false);
        let victim = c.insert(d, false).unwrap();
        assert_eq!(victim, EvictedLine { addr: a, dirty: true });
    }

    #[test]
    fn reinsert_refreshes_and_ors_dirty() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(a, false);
        c.insert(b, false);
        assert!(c.insert(a, true).is_none());
        let victim = c.insert(d, false).unwrap();
        assert_eq!(victim.addr, b, "a was refreshed to MRU");
        // `a`'s dirty bit was ORed in.
        let victim = c.insert(addr_in_set(&c, 0, 3), false).unwrap();
        assert_eq!(victim, EvictedLine { addr: a, dirty: true });
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        assert!(!c.mark_dirty(a));
        c.insert(a, false);
        assert!(c.mark_dirty(a));
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(b, false);
        let victim = c.insert(d, false).unwrap();
        assert!(victim.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let a = addr_in_set(&c, 1, 0);
        c.insert(a, true);
        assert_eq!(c.invalidate(a), Some(true));
        assert!(!c.contains(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        for k in 0..2 {
            c.insert(addr_in_set(&c, 0, k), false);
            c.insert(addr_in_set(&c, 1, k), false);
        }
        assert_eq!(c.occupancy(), 4);
        // Filling set 0 further does not evict set 1.
        c.insert(addr_in_set(&c, 0, 9), false);
        assert!(c.contains(addr_in_set(&c, 1, 0)));
        assert!(c.contains(addr_in_set(&c, 1, 1)));
    }

    #[test]
    fn table1_configuration() {
        let c = MetadataCache::new(128 * 1024, 8);
        assert_eq!(c.capacity_bytes(), 128 * 1024);
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn rejects_bad_capacity() {
        let _ = MetadataCache::new(100, 8);
    }

    #[test]
    fn level_aware_policy_protects_high_levels() {
        let mut c = MetadataCache::with_policy(
            2 * CACHELINE_BYTES,
            2,
            ReplacementPolicy::LevelAware,
        );
        // One set, two ways; sets = 1.
        assert_eq!(c.num_sets(), 1);
        let low = 0;
        let high = 64;
        let newcomer = 128;
        c.insert_with_priority(high, false, 3); // a tree-level-3 line, older
        c.insert_with_priority(low, false, 0); // an enc-counter line, newer
        // LRU would evict `high` (older); level-aware evicts `low`.
        let victim = c.insert_with_priority(newcomer, false, 0).expect("full");
        assert_eq!(victim.addr, low);
        assert!(c.contains(high));
    }

    #[test]
    fn level_aware_falls_back_to_lru_within_a_class() {
        let mut c = MetadataCache::with_policy(
            2 * CACHELINE_BYTES,
            2,
            ReplacementPolicy::LevelAware,
        );
        c.insert_with_priority(0, false, 1);
        c.insert_with_priority(64, false, 1);
        // Equal priorities: the older line (addr 0) is the victim.
        let victim = c.insert_with_priority(128, false, 1).expect("full");
        assert_eq!(victim.addr, 0);
    }

    #[test]
    fn lru_policy_ignores_priorities() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert_with_priority(a, false, 9);
        c.insert_with_priority(b, false, 0);
        let victim = c.insert_with_priority(d, false, 0).expect("full");
        assert_eq!(victim.addr, a, "plain LRU evicts the oldest regardless");
    }

    #[test]
    fn reinsert_keeps_the_highest_priority() {
        let mut c = MetadataCache::with_policy(
            2 * CACHELINE_BYTES,
            2,
            ReplacementPolicy::LevelAware,
        );
        c.insert_with_priority(0, false, 2);
        c.insert_with_priority(0, false, 0); // refresh with lower priority
        c.insert_with_priority(64, false, 1);
        // Addr 0 retained priority 2, so addr 64 is the victim.
        let victim = c.insert_with_priority(128, false, 1).expect("full");
        assert_eq!(victim.addr, 64);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny();
        c.insert(64, true);
        c.probe(64);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.hits(), 0);
        assert!(!c.contains(64));
    }
}
