//! The dedicated on-chip metadata cache (Table I: 128 KB, 8-way, 64 B
//! lines, shared by encryption and integrity-tree counters).
//!
//! The cache sits on the hottest path of the simulator — every data
//! access probes it once per tree level walked — so the layout is tuned
//! for the probe loop:
//!
//! - tags live in one contiguous `u64` slab, so a set's tags span a
//!   single hardware cacheline (8 ways × 8 bytes) and the 8-way lookup is
//!   a branchless, vectorizable compare instead of an early-exit scan;
//! - recency is a per-entry timestamp, not position in an LRU-ordered
//!   vector, so a hit updates one word instead of shuffling the set with
//!   `remove` + `push` as the seed implementation did;
//! - LRU victim selection reduces the packed keys `(tick << 3) | way`
//!   with a branchless minimum, avoiding the data-dependent branch
//!   mispredicts of a position scan;
//! - the set index is a mask when the set count is a power of two (the
//!   practical case), not a hardware-division modulo.
//!
//! Empty ways carry a sentinel tag (`u64::MAX`, never a real line
//! address) and tick 0, so a fill and an eviction share one victim scan:
//! tick 0 always wins, and a sentinel victim simply means the set had a
//! free way.
//!
//! Victim selection is semantically identical to the seed's
//! ordered-vector formulation: plain LRU evicts the minimum timestamp,
//! and the level-aware policy evicts the minimum `(priority, timestamp)`
//! — the same line the seed's "first of equal minima in LRU order"
//! picked. The golden-equivalence suite pins this against the frozen
//! seed cache inside `super::reference`.

use crate::CACHELINE_BYTES;

/// Tag of an empty way. Line addresses are cacheline-aligned, so a real
/// tag can never collide with it.
const SENTINEL: u64 = u64::MAX;

/// Number of per-level statistic bins. Tree heights in every evaluated
/// configuration stay below 10; deeper levels fold into the last bin.
pub const STAT_LEVELS: usize = 16;

/// Clamps a metadata level / priority into the statistics bins.
#[inline]
fn stat_level(level: u8) -> usize {
    (level as usize).min(STAT_LEVELS - 1)
}

/// Snapshot of the cache's hit/miss/eviction statistics, overall and per
/// metadata level (level 0 = encryption counters, the paper's Fig 15
/// per-level breakdown).
///
/// Derives `Eq` so sweep determinism tests can compare results exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits across all levels.
    pub hits: u64,
    /// Demand misses across all levels.
    pub misses: u64,
    /// Hits attributed to each metadata level.
    pub level_hits: [u64; STAT_LEVELS],
    /// Misses attributed to each metadata level.
    pub level_misses: [u64; STAT_LEVELS],
    /// Evictions attributed to each victim's level.
    pub level_evicts: [u64; STAT_LEVELS],
}

impl CacheStats {
    /// Overall hit rate, or `None` when the cache saw no probes.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Total evictions across levels.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.level_evicts.iter().sum()
    }

    /// Merges `other` into `self` (multi-run aggregation).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        for i in 0..STAT_LEVELS {
            self.level_hits[i] += other.level_hits[i];
            self.level_misses[i] += other.level_misses[i];
            self.level_evicts[i] += other.level_evicts[i];
        }
    }
}

/// The 8 entries of one set as a fixed-size array (for the fixed-width
/// 8-way kernels).
///
/// # Panics
///
/// Panics if `slab` is shorter than `base + 8`; all callers guard on
/// `ways == 8`, which guarantees every set spans 8 slots.
#[inline]
fn set8(slab: &[u64], base: usize) -> &[u64; 8] {
    match slab[base..base + 8].first_chunk::<8>() {
        Some(array) => array,
        None => unreachable!("slice of length 8"),
    }
}

/// Runtime AVX2 detection, probed once per cache construction.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// AVX2 kernels for the 8-way hot paths: one 256-bit compare pair replaces
/// the 8-element scalar cmov chain for tag lookup, and a lanewise
/// min-reduction replaces the victim scan. Selected at construction via
/// runtime feature detection; the scalar paths remain both the fallback
/// and the semantic specification (the equivalence tests run either way).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // SIMD intrinsics; every call site documents its proof.
mod x86 {
    use core::arch::x86_64::{
        __m256i, _mm256_blendv_epi8, _mm256_castsi256_pd, _mm256_cmpeq_epi64,
        _mm256_cmpgt_epi64, _mm256_extract_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_or_si256, _mm256_permute4x64_epi64, _mm256_set1_epi64x, _mm256_set_epi64x,
        _mm256_shuffle_epi32, _mm256_slli_epi64,
    };

    /// Lanewise unsigned min; valid because all inputs fit in 63 bits, so
    /// the signed 64-bit compare agrees with the unsigned order.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn min_epu64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b))
    }

    /// Way index holding `addr` among the 8 tags at `tags`, or
    /// `usize::MAX` if absent.
    ///
    /// # Safety
    ///
    /// `tags` must be valid for reads of 8 `u64`s, and the CPU must
    /// support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn find8(tags: *const u64, addr: u64) -> usize {
        // SAFETY: the caller guarantees 8 readable u64s.
        let (lo, hi) = unsafe {
            (_mm256_loadu_si256(tags.cast()), _mm256_loadu_si256(tags.add(4).cast()))
        };
        let needle = _mm256_set1_epi64x(addr as i64);
        let eq_lo = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lo, needle)));
        let eq_hi = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(hi, needle)));
        let mask = (eq_lo as u32 & 0xF) | ((eq_hi as u32 & 0xF) << 4);
        if mask == 0 {
            usize::MAX
        } else {
            mask.trailing_zeros() as usize
        }
    }

    /// Way index of the minimum of the 8 ticks at `ticks` (ties to the
    /// lowest way, matching the scalar packed-key scan).
    ///
    /// # Safety
    ///
    /// `ticks` must be valid for reads of 8 `u64`s, each less than
    /// `1 << 61`, and the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn victim8(ticks: *const u64) -> usize {
        // SAFETY: the caller guarantees 8 readable u64s.
        let (lo, hi) = unsafe {
            (_mm256_loadu_si256(ticks.cast()), _mm256_loadu_si256(ticks.add(4).cast()))
        };
        // Pack the way index into the low bits so the reduction is exact.
        let key_lo = _mm256_or_si256(_mm256_slli_epi64(lo, 3), _mm256_set_epi64x(3, 2, 1, 0));
        let key_hi = _mm256_or_si256(_mm256_slli_epi64(hi, 3), _mm256_set_epi64x(7, 6, 5, 4));
        let m = min_epu64(key_lo, key_hi);
        // Horizontal min: fold 128-bit halves, then 64-bit halves.
        let m = min_epu64(m, _mm256_permute4x64_epi64::<0b0100_1110>(m));
        let m = min_epu64(m, _mm256_shuffle_epi32::<0b0100_1110>(m));
        (_mm256_extract_epi64::<0>(m) as u64 & 7) as usize
    }
}

/// Victim-selection policy.
///
/// `LevelAware` implements the metadata type-aware replacement idea of
/// Lee et al. (§VIII-B2 related work): higher-priority lines (higher tree
/// levels, which cover exponentially more memory) are preferred for
/// retention; among the lowest-priority resident lines the LRU one is
/// evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Pure least-recently-used (the paper's model, and ours by default).
    #[default]
    Lru,
    /// Evict the least-recently-used line of the lowest priority class.
    LevelAware,
}

/// A line evicted from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Address of the evicted line.
    pub addr: u64,
    /// Whether it was dirty (and therefore needs a write-back, which in a
    /// secure memory also bumps the parent counter).
    pub dirty: bool,
    /// Retention priority the line carried — the engine tags lines with
    /// their tree level, so a dirty eviction can be written back without a
    /// reverse address lookup.
    pub priority: u8,
}

/// A set-associative, write-back, LRU cache keyed by line address.
///
/// Only tags and dirty bits are modeled — the line *contents* live in the
/// engine's counter store, which represents the union of memory and cache
/// state.
///
/// # Example
///
/// ```
/// use morphtree_core::metadata::MetadataCache;
///
/// let mut cache = MetadataCache::new(8 * 1024, 8);
/// assert!(!cache.probe(0x1000));
/// cache.insert(0x1000, false);
/// assert!(cache.probe(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    /// Line tags, `ways` consecutive slots per set; [`SENTINEL`] marks an
    /// empty way.
    tags: Box<[u64]>,
    /// Last-touch timestamps, parallel to `tags`; strictly increasing (and
    /// nonzero for occupied ways), so the minimum over a set is its
    /// least-recently-used line — or an empty way, which holds 0.
    ticks: Box<[u64]>,
    /// Dirty bits, parallel to `tags`.
    dirty: Box<[bool]>,
    /// Retention priorities, parallel to `tags`.
    priority: Box<[u8]>,
    ways: usize,
    policy: ReplacementPolicy,
    /// `Some(num_sets - 1)` when the set count is a power of two, so
    /// [`MetadataCache::set_index`] is a mask instead of a modulo.
    set_mask: Option<u64>,
    num_sets: usize,
    /// Whether the AVX2 8-way kernels are usable (detected once here so
    /// the hot paths branch on a predictable bool).
    simd: bool,
    /// Global touch counter feeding `ticks`.
    tick: u64,
    stats: CacheStats,
}

impl MetadataCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * CACHELINE_BYTES`.
    #[must_use]
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        Self::with_policy(capacity_bytes, ways, ReplacementPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * CACHELINE_BYTES`.
    #[must_use]
    pub fn with_policy(capacity_bytes: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways >= 1);
        let lines = capacity_bytes / CACHELINE_BYTES;
        assert!(
            lines >= ways && capacity_bytes.is_multiple_of(ways * CACHELINE_BYTES),
            "capacity {capacity_bytes} incompatible with {ways} ways"
        );
        let num_sets = lines / ways;
        MetadataCache {
            tags: vec![SENTINEL; lines].into_boxed_slice(),
            ticks: vec![0; lines].into_boxed_slice(),
            dirty: vec![false; lines].into_boxed_slice(),
            priority: vec![0; lines].into_boxed_slice(),
            ways,
            policy,
            set_mask: num_sets
                .is_power_of_two()
                .then_some(num_sets as u64 - 1),
            num_sets,
            simd: ways == 8 && avx2_available(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.tags.len() * CACHELINE_BYTES
    }

    /// Demand hits recorded by [`MetadataCache::probe`].
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.stats.hits
    }

    /// Demand misses recorded by [`MetadataCache::probe`].
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Snapshot of the full (per-level) statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes all statistics, keeping the cache contents (used at the
    /// warm-up/measure boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        let line = addr / CACHELINE_BYTES as u64;
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.num_sets as u64) as usize,
        }
    }

    /// Slot index of `addr` within its set, if resident. The 8-way case —
    /// every configuration in the paper — is one AVX2 compare pair when
    /// available, else a fixed-width branchless cmov chain; other
    /// associativities take the generic scan.
    #[inline]
    #[allow(unsafe_code)] // see the `x86` module
    fn find(&self, base: usize, addr: u64) -> Option<usize> {
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            let tags = set8(&self.tags, base);
            // SAFETY: `simd` implies AVX2 support and 8 ways; the slice
            // conversion above proves 8 readable u64s.
            let way = unsafe { x86::find8(tags.as_ptr(), addr) };
            return (way != usize::MAX).then(|| base + way);
        }
        if self.ways == 8 {
            let tags = set8(&self.tags, base);
            let mut found = usize::MAX;
            for (j, &tag) in tags.iter().enumerate() {
                if tag == addr {
                    found = j;
                }
            }
            (found != usize::MAX).then(|| base + found)
        } else {
            self.tags[base..base + self.ways]
                .iter()
                .position(|&tag| tag == addr)
                .map(|j| base + j)
        }
    }

    /// The way to (re)fill on an insertion miss: an empty way if the set
    /// has one (tick 0 loses every comparison), else the policy's victim.
    #[inline]
    #[allow(unsafe_code)] // see the `x86` module
    fn victim_slot(&self, base: usize) -> usize {
        match self.policy {
            ReplacementPolicy::Lru => {
                #[cfg(target_arch = "x86_64")]
                if self.simd {
                    debug_assert!(self.tick < 1 << 61, "tick overflow");
                    let ticks = set8(&self.ticks, base);
                    // SAFETY: `simd` implies AVX2 and 8 ways; ticks stay
                    // below 2^61 (asserted above), as `victim8` requires.
                    return base + unsafe { x86::victim8(ticks.as_ptr()) };
                }
                if self.ways == 8 {
                    // Branchless min over keys packing the way index into
                    // the tick's low bits; ticks are unique so ordering by
                    // key is ordering by tick.
                    debug_assert!(self.tick < 1 << 61, "tick overflow");
                    let ticks = set8(&self.ticks, base);
                    let mut best = ticks[0] << 3;
                    for (j, &tick) in ticks.iter().enumerate().skip(1) {
                        let key = (tick << 3) | j as u64;
                        best = best.min(key);
                    }
                    base + (best & 7) as usize
                } else {
                    let mut best = base;
                    for j in base + 1..base + self.ways {
                        if self.ticks[j] < self.ticks[best] {
                            best = j;
                        }
                    }
                    best
                }
            }
            ReplacementPolicy::LevelAware => {
                let mut best = base;
                for j in base + 1..base + self.ways {
                    if (self.priority[j], self.ticks[j]) < (self.priority[best], self.ticks[best])
                    {
                        best = j;
                    }
                }
                best
            }
        }
    }

    /// Looks up `addr`, updating recency and hit/miss statistics. The
    /// per-level breakdown attributes this probe to level 0; callers that
    /// know the metadata level should use [`MetadataCache::probe_level`].
    #[inline]
    pub fn probe(&mut self, addr: u64) -> bool {
        self.probe_level(addr, 0)
    }

    /// Looks up `addr`, attributing the hit or miss to metadata `level`
    /// in the per-level statistics.
    #[inline]
    pub fn probe_level(&mut self, addr: u64, level: u8) -> bool {
        let base = self.set_index(addr) * self.ways;
        self.tick += 1;
        if let Some(slot) = self.find(base, addr) {
            self.ticks[slot] = self.tick;
            self.stats.hits += 1;
            self.stats.level_hits[stat_level(level)] += 1;
            true
        } else {
            self.stats.misses += 1;
            self.stats.level_misses[stat_level(level)] += 1;
            false
        }
    }

    /// Non-destructive lookup: no recency or statistics update.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let base = self.set_index(addr) * self.ways;
        self.find(base, addr).is_some()
    }

    /// Inserts `addr` as most-recently-used, returning the victim if the
    /// set was full. Re-inserting a resident line refreshes recency and
    /// ORs the dirty bit.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Option<EvictedLine> {
        self.insert_with_priority(addr, dirty, 0)
    }

    /// Like [`MetadataCache::insert`], tagging the line with a retention
    /// priority (the metadata level). Under [`ReplacementPolicy::Lru`] the
    /// priority is recorded but ignored for victim selection.
    #[inline]
    pub fn insert_with_priority(
        &mut self,
        addr: u64,
        dirty: bool,
        priority: u8,
    ) -> Option<EvictedLine> {
        debug_assert!(addr != SENTINEL, "u64::MAX is reserved as the empty-way tag");
        let base = self.set_index(addr) * self.ways;
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.find(base, addr) {
            self.ticks[slot] = tick;
            self.dirty[slot] |= dirty;
            self.priority[slot] = self.priority[slot].max(priority);
            return None;
        }
        let slot = self.victim_slot(base);
        let old_tag = self.tags[slot];
        let victim = (old_tag != SENTINEL).then(|| EvictedLine {
            addr: old_tag,
            dirty: self.dirty[slot],
            priority: self.priority[slot],
        });
        if let Some(v) = &victim {
            self.stats.level_evicts[stat_level(v.priority)] += 1;
        }
        self.tags[slot] = addr;
        self.ticks[slot] = tick;
        self.dirty[slot] = dirty;
        self.priority[slot] = priority;
        victim
    }

    /// Fused probe + dirty re-insert for the write hit path: one lookup
    /// does the work of [`MetadataCache::probe`] followed by a dirty
    /// [`MetadataCache::insert_with_priority`] of the same resident line.
    /// Returns whether the line was resident; on a miss only the miss
    /// statistic is charged (the caller then fetches and inserts as
    /// usual).
    ///
    /// Equivalent to the probe/insert pair: both schemes touch only this
    /// address's recency, so every relative LRU order — and therefore
    /// every future eviction — is identical.
    #[inline]
    pub fn touch_dirty(&mut self, addr: u64, priority: u8) -> bool {
        let base = self.set_index(addr) * self.ways;
        self.tick += 1;
        if let Some(slot) = self.find(base, addr) {
            self.ticks[slot] = self.tick;
            self.dirty[slot] = true;
            self.priority[slot] = self.priority[slot].max(priority);
            self.stats.hits += 1;
            self.stats.level_hits[stat_level(priority)] += 1;
            true
        } else {
            self.stats.misses += 1;
            self.stats.level_misses[stat_level(priority)] += 1;
            false
        }
    }

    /// Marks a resident line dirty; returns whether it was resident.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let base = self.set_index(addr) * self.ways;
        if let Some(slot) = self.find(base, addr) {
            self.dirty[slot] = true;
            true
        } else {
            false
        }
    }

    /// Removes `addr` if resident, returning its dirty bit.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let base = self.set_index(addr) * self.ways;
        let slot = self.find(base, addr)?;
        let was_dirty = self.dirty[slot];
        self.tags[slot] = SENTINEL;
        self.ticks[slot] = 0;
        self.dirty[slot] = false;
        self.priority[slot] = 0;
        Some(was_dirty)
    }

    /// Drops all contents and statistics.
    pub fn clear(&mut self) {
        self.tags.fill(SENTINEL);
        self.ticks.fill(0);
        self.dirty.fill(false);
        self.priority.fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Number of resident lines.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&tag| tag != SENTINEL).count()
    }

    // ------------------------------------------------------------------
    // Persistence hooks (`crate::persist`): exact state export/import so a
    // resumed engine replays byte-identically — ticks included, since LRU
    // victim choice depends on them.
    // ------------------------------------------------------------------

    /// Victim-selection policy.
    pub(crate) fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Global tick counter plus every way's `(tag, tick, dirty, priority)`,
    /// in slab order.
    pub(crate) fn export_entries(&self) -> (u64, Vec<(u64, u64, bool, u8)>) {
        let entries = (0..self.tags.len())
            .map(|i| (self.tags[i], self.ticks[i], self.dirty[i], self.priority[i]))
            .collect();
        (self.tick, entries)
    }

    /// Restores [`MetadataCache::export_entries`] output; returns `false`
    /// (leaving the cache untouched) when the entry count does not match
    /// this cache's line count.
    pub(crate) fn import_entries(&mut self, tick: u64, entries: &[(u64, u64, bool, u8)]) -> bool {
        if entries.len() != self.tags.len() {
            return false;
        }
        for (i, &(tag, t, d, p)) in entries.iter().enumerate() {
            self.tags[i] = tag;
            self.ticks[i] = t;
            self.dirty[i] = d;
            self.priority[i] = p;
        }
        self.tick = tick;
        true
    }

    /// Overwrites the statistics (restored alongside the entries).
    pub(crate) fn set_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MetadataCache {
        // 2 sets x 2 ways.
        MetadataCache::new(4 * CACHELINE_BYTES, 2)
    }

    fn addr_in_set(cache: &MetadataCache, set: usize, k: u64) -> u64 {
        (set as u64 + k * cache.num_sets() as u64) * CACHELINE_BYTES as u64
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        assert!(!c.probe(a));
        c.insert(a, false);
        assert!(c.probe(a));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(a, false);
        c.insert(b, false);
        // Touch `a` so `b` becomes LRU.
        assert!(c.probe(a));
        let victim = c.insert(d, false).expect("set full");
        assert_eq!(victim.addr, b);
        assert!(c.contains(a));
        assert!(c.contains(d));
    }

    #[test]
    fn eight_way_set_evicts_true_lru() {
        let mut c = MetadataCache::new(8 * CACHELINE_BYTES, 8);
        assert_eq!(c.num_sets(), 1);
        for k in 0..8 {
            c.insert(k * CACHELINE_BYTES as u64, false);
        }
        // Touch every line except addr 3*64, making it the LRU.
        for k in [0u64, 1, 2, 4, 5, 6, 7] {
            assert!(c.probe(k * CACHELINE_BYTES as u64));
        }
        let victim = c.insert(8 * CACHELINE_BYTES as u64, false).expect("full");
        assert_eq!(victim.addr, 3 * CACHELINE_BYTES as u64);
    }

    #[test]
    fn eviction_reports_dirty_bit() {
        let mut c = tiny();
        let a = addr_in_set(&c, 1, 0);
        let b = addr_in_set(&c, 1, 1);
        let d = addr_in_set(&c, 1, 2);
        c.insert(a, true);
        c.insert(b, false);
        let victim = c.insert(d, false).unwrap();
        assert_eq!(victim, EvictedLine { addr: a, dirty: true, priority: 0 });
    }

    #[test]
    fn reinsert_refreshes_and_ors_dirty() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(a, false);
        c.insert(b, false);
        assert!(c.insert(a, true).is_none());
        let victim = c.insert(d, false).unwrap();
        assert_eq!(victim.addr, b, "a was refreshed to MRU");
        // `a`'s dirty bit was ORed in.
        let victim = c.insert(addr_in_set(&c, 0, 3), false).unwrap();
        assert_eq!(victim, EvictedLine { addr: a, dirty: true, priority: 0 });
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        assert!(!c.mark_dirty(a));
        c.insert(a, false);
        assert!(c.mark_dirty(a));
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(b, false);
        let victim = c.insert(d, false).unwrap();
        assert!(victim.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let a = addr_in_set(&c, 1, 0);
        c.insert(a, true);
        assert_eq!(c.invalidate(a), Some(true));
        assert!(!c.contains(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn invalidate_then_insert_reuses_the_hole() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert(a, false);
        c.insert(b, true);
        assert_eq!(c.invalidate(a), Some(false));
        assert!(c.contains(b), "the survivor stays resident");
        // The freed way is reused without an eviction.
        assert!(c.insert(d, false).is_none());
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        for k in 0..2 {
            c.insert(addr_in_set(&c, 0, k), false);
            c.insert(addr_in_set(&c, 1, k), false);
        }
        assert_eq!(c.occupancy(), 4);
        // Filling set 0 further does not evict set 1.
        c.insert(addr_in_set(&c, 0, 9), false);
        assert!(c.contains(addr_in_set(&c, 1, 0)));
        assert!(c.contains(addr_in_set(&c, 1, 1)));
    }

    #[test]
    fn table1_configuration() {
        let c = MetadataCache::new(128 * 1024, 8);
        assert_eq!(c.capacity_bytes(), 128 * 1024);
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn rejects_bad_capacity() {
        let _ = MetadataCache::new(100, 8);
    }

    #[test]
    fn non_power_of_two_set_count_still_maps_correctly() {
        // 3 sets x 2 ways: exercises the modulo fallback path.
        let mut c = MetadataCache::new(6 * CACHELINE_BYTES, 2);
        assert_eq!(c.num_sets(), 3);
        for k in 0..2 {
            for set in 0..3 {
                c.insert(addr_in_set(&c, set, k), false);
            }
        }
        assert_eq!(c.occupancy(), 6);
        for set in 0..3 {
            assert!(c.contains(addr_in_set(&c, set, 0)));
            assert!(c.contains(addr_in_set(&c, set, 1)));
        }
    }

    #[test]
    fn level_aware_policy_protects_high_levels() {
        let mut c = MetadataCache::with_policy(
            2 * CACHELINE_BYTES,
            2,
            ReplacementPolicy::LevelAware,
        );
        // One set, two ways; sets = 1.
        assert_eq!(c.num_sets(), 1);
        let low = 0;
        let high = 64;
        let newcomer = 128;
        c.insert_with_priority(high, false, 3); // a tree-level-3 line, older
        c.insert_with_priority(low, false, 0); // an enc-counter line, newer
        // LRU would evict `high` (older); level-aware evicts `low`.
        let victim = c.insert_with_priority(newcomer, false, 0).expect("full");
        assert_eq!(victim.addr, low);
        assert!(c.contains(high));
    }

    #[test]
    fn level_aware_falls_back_to_lru_within_a_class() {
        let mut c = MetadataCache::with_policy(
            2 * CACHELINE_BYTES,
            2,
            ReplacementPolicy::LevelAware,
        );
        c.insert_with_priority(0, false, 1);
        c.insert_with_priority(64, false, 1);
        // Equal priorities: the older line (addr 0) is the victim.
        let victim = c.insert_with_priority(128, false, 1).expect("full");
        assert_eq!(victim.addr, 0);
    }

    #[test]
    fn lru_policy_ignores_priorities() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        c.insert_with_priority(a, false, 9);
        c.insert_with_priority(b, false, 0);
        let victim = c.insert_with_priority(d, false, 0).expect("full");
        assert_eq!(victim.addr, a, "plain LRU evicts the oldest regardless");
    }

    #[test]
    fn reinsert_keeps_the_highest_priority() {
        let mut c = MetadataCache::with_policy(
            2 * CACHELINE_BYTES,
            2,
            ReplacementPolicy::LevelAware,
        );
        c.insert_with_priority(0, false, 2);
        c.insert_with_priority(0, false, 0); // refresh with lower priority
        c.insert_with_priority(64, false, 1);
        // Addr 0 retained priority 2, so addr 64 is the victim.
        let victim = c.insert_with_priority(128, false, 1).expect("full");
        assert_eq!(victim.addr, 64);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny();
        c.insert(64, true);
        c.probe(64);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.hits(), 0);
        assert!(!c.contains(64));
    }

    #[test]
    fn per_level_attribution_tracks_probes_and_evictions() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        let b = addr_in_set(&c, 0, 1);
        let d = addr_in_set(&c, 0, 2);
        assert!(!c.probe_level(a, 2)); // miss at level 2
        c.insert_with_priority(a, false, 2);
        assert!(c.probe_level(a, 2)); // hit at level 2
        c.insert_with_priority(b, false, 0);
        // Evicting fills level_evicts by the victim's level.
        let victim = c.insert_with_priority(d, false, 1).expect("set full");
        let s = *c.stats();
        assert_eq!(s.level_misses[2], 1);
        assert_eq!(s.level_hits[2], 1);
        assert_eq!(s.level_evicts[usize::from(victim.priority)], 1);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.hits + s.misses, c.hits() + c.misses());
        // Deep levels clamp into the last bin instead of indexing out.
        assert!(!c.probe_level(addr_in_set(&c, 1, 7), 200));
        assert_eq!(c.stats().level_misses[STAT_LEVELS - 1], 1);
    }

    #[test]
    fn touch_dirty_attributes_by_priority() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        c.insert_with_priority(a, false, 1);
        assert!(c.touch_dirty(a, 1));
        assert!(!c.touch_dirty(addr_in_set(&c, 0, 5), 3));
        let s = c.stats();
        assert_eq!(s.level_hits[1], 1);
        assert_eq!(s.level_misses[3], 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        let a = addr_in_set(&c, 0, 0);
        c.insert(a, true);
        c.probe(a);
        c.reset_stats();
        assert_eq!(*c.stats(), CacheStats::default());
        assert!(c.contains(a), "contents survive a stats reset");
        assert_eq!(c.stats().hit_rate(), None, "no probes since the reset");
    }

    #[test]
    fn cache_stats_merge_and_hit_rate() {
        let mut a = CacheStats { hits: 3, misses: 1, ..CacheStats::default() };
        a.level_hits[0] = 3;
        let mut b = CacheStats { hits: 1, misses: 3, ..CacheStats::default() };
        b.level_evicts[2] = 5;
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 4);
        assert_eq!(a.hit_rate(), Some(0.5));
        assert_eq!(a.evictions(), 5);
    }
}
