//! The *frozen* pre-optimization metadata engine, kept as a behavioral
//! oracle.
//!
//! [`ReferenceEngine`] is the seed implementation of
//! [`super::engine::MetadataEngine`] verbatim: `HashMap<u64, Line>` level
//! stores keyed by physical address, a heap-allocated fetch list per tree
//! walk, and reverse address lookups (`TreeGeometry::locate`) to recover
//! levels. It exists for two reasons:
//!
//! 1. **Equivalence proof** — the golden suite replays identical access
//!    streams through both engines and asserts byte-identical
//!    [`EngineStats`] and [`MemAccess`] sequences, so every optimization in
//!    the flat-store engine is proven behavior-preserving.
//! 2. **Perf baseline** — `morphtree perf` measures this engine alongside
//!    the optimized one and records both throughputs (and their ratio) in
//!    `BENCH.json`.
//!
//! Do not optimize this module. Any change to the modeled behavior must be
//! made in both engines, keeping them bit-identical.

use std::collections::HashMap;

use super::cache::ReplacementPolicy;
use super::engine::{EngineOptions, MacMode, VerificationMode};
use super::stats::{AccessCategory, EngineStats, MemAccess};
use crate::counters::{CounterLine, IncrementOutcome, Line};
use crate::tree::{TreeConfig, TreeGeometry};
use crate::CACHELINE_BYTES;

/// Recursion backstop, identical to the optimized engine's.
const MAX_CHAIN_DEPTH: usize = 64;

/// The seed (hash-map) metadata engine, frozen for equivalence testing and
/// baseline measurement. See the module docs; use
/// [`super::engine::MetadataEngine`] for everything else.
#[derive(Debug)]
pub struct ReferenceEngine {
    config: TreeConfig,
    geometry: TreeGeometry,
    cache: SeedCache,
    /// Counter lines per level, keyed by *physical address*, created lazily
    /// (all-zero) — the seed representation.
    levels: Vec<HashMap<u64, Line>>,
    stats: EngineStats,
    mac_mode: MacMode,
    verification: VerificationMode,
    mac_base: u64,
}

impl ReferenceEngine {
    /// Creates a reference engine; same contract as
    /// [`super::engine::MetadataEngine::new`].
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or cache parameters.
    #[must_use]
    pub fn new(
        config: TreeConfig,
        memory_bytes: u64,
        cache_bytes: usize,
        mac_mode: MacMode,
    ) -> Self {
        Self::with_options(
            config,
            memory_bytes,
            cache_bytes,
            EngineOptions { mac_mode, ..EngineOptions::default() },
        )
    }

    /// Creates a reference engine with the full set of secondary knobs;
    /// same contract as [`super::engine::MetadataEngine::with_options`].
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or cache parameters.
    #[must_use]
    pub fn with_options(
        config: TreeConfig,
        memory_bytes: u64,
        cache_bytes: usize,
        options: EngineOptions,
    ) -> Self {
        let geometry = TreeGeometry::new(&config, memory_bytes);
        let num_levels = geometry.levels().len();
        let mac_base = geometry.levels().last().map_or(0, |last| last.base_addr + last.bytes());
        ReferenceEngine {
            config,
            cache: SeedCache::with_policy(cache_bytes, 8, options.replacement),
            levels: vec![HashMap::new(); num_levels],
            stats: EngineStats::new(num_levels),
            mac_mode: options.mac_mode,
            verification: options.verification,
            geometry,
            mac_base,
        }
    }

    /// The tree configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// The tree geometry.
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Clears statistics while keeping counter and cache state.
    pub fn reset_stats(&mut self) {
        let levels = self.levels.len();
        self.stats = EngineStats::new(levels);
    }

    /// Effective counter value covering `child_idx` at `level`.
    #[must_use]
    pub fn counter_value(&self, level: usize, child_idx: u64) -> u64 {
        let (line_idx, slot) = self.geometry.parent_of(level, child_idx);
        let addr = self.geometry.line_addr(level, line_idx);
        self.levels[level]
            .get(&addr)
            .map_or(0, |line| line.get(slot))
    }

    /// A data read arriving at the memory controller (an LLC miss).
    pub fn read(&mut self, data_line: u64, out: &mut Vec<MemAccess>) {
        assert!(data_line < self.geometry.data_lines(), "data line out of range");
        self.stats.data_reads += 1;
        self.emit(out, data_line * CACHELINE_BYTES as u64, false, AccessCategory::Data, true);
        if self.mac_mode == MacMode::Separate {
            let mac_addr = self.mac_base + (data_line / 8) * CACHELINE_BYTES as u64;
            self.emit(out, mac_addr, false, AccessCategory::Mac, true);
        }
        let (enc_line, _) = self.geometry.parent_of(0, data_line);
        self.ensure_cached(0, enc_line, out, 0);
    }

    /// A data write arriving at the memory controller (a dirty LLC
    /// eviction).
    pub fn write(&mut self, data_line: u64, out: &mut Vec<MemAccess>) {
        assert!(data_line < self.geometry.data_lines(), "data line out of range");
        self.stats.data_writes += 1;
        self.emit(out, data_line * CACHELINE_BYTES as u64, true, AccessCategory::Data, false);
        if self.mac_mode == MacMode::Separate {
            let mac_addr = self.mac_base + (data_line / 8) * CACHELINE_BYTES as u64;
            self.emit(out, mac_addr, true, AccessCategory::Mac, false);
        }
        self.bump_counter(0, data_line, out, 0);
    }

    fn emit(
        &mut self,
        out: &mut Vec<MemAccess>,
        addr: u64,
        is_write: bool,
        category: AccessCategory,
        critical: bool,
    ) {
        let access = MemAccess { addr, is_write, category, critical };
        self.stats.record(&access);
        out.push(access);
    }

    fn children_count(&self, level: usize, line_idx: u64) -> usize {
        let total = if level == 0 {
            self.geometry.data_lines()
        } else {
            self.geometry.levels()[level - 1].lines
        };
        let arity = self.geometry.levels()[level].arity as u64;
        (total - line_idx * arity).min(arity) as usize
    }

    fn line_mut(&mut self, level: usize, line_idx: u64) -> &mut Line {
        let addr = self.geometry.line_addr(level, line_idx);
        let org = self.config.org(level);
        self.levels[level]
            .entry(addr)
            .or_insert_with(|| org.new_line())
    }

    /// The seed tree walk: collects fetched addresses in a heap `Vec` and
    /// re-derives each one's level via `TreeGeometry::locate`.
    fn ensure_cached(&mut self, level: usize, line_idx: u64, out: &mut Vec<MemAccess>, depth: usize) {
        let top = self.geometry.top_level();
        let mut fetched = Vec::new();
        let mut l = level;
        let mut idx = line_idx;
        while l < top {
            let addr = self.geometry.line_addr(l, idx);
            if self.cache.probe(addr) {
                break;
            }
            let gates = self.verification == VerificationMode::Strict;
            self.emit(out, addr, false, AccessCategory::for_level(l), gates);
            fetched.push(addr);
            let (parent_idx, _) = self.geometry.parent_of(l + 1, idx);
            l += 1;
            idx = parent_idx;
        }
        // Chain-depth accounting, mirrored from the optimized engine: it
        // records once per *miss* walk, and this seed formulation also
        // reaches here on hits (with nothing fetched), so only record when
        // the walk actually fetched — the equivalence suite compares stats.
        if !fetched.is_empty() {
            self.stats.fetch_depths.record(fetched.len() as u64);
            // One batched MAC-verification group per miss walk, mirrored
            // from the optimized engine for the same reason.
            self.stats.mac_batches += 1;
        }
        // Insert top-down so the requested line ends most-recently-used.
        for addr in fetched.into_iter().rev() {
            // Every fetched address came from this geometry's own layout.
            #[allow(clippy::expect_used)]
            let (lvl, _) = self.geometry.locate(addr).expect("metadata address");
            if let Some(evicted) = self.cache.insert_with_priority(addr, false, lvl as u8) {
                if evicted.dirty {
                    self.writeback(evicted.addr, out, depth);
                }
            }
        }
    }

    fn writeback(&mut self, addr: u64, out: &mut Vec<MemAccess>, depth: usize) {
        // The cache is only ever fed metadata addresses.
        #[allow(clippy::expect_used)]
        let (level, idx) = self
            .geometry
            .locate(addr)
            .expect("cache holds only metadata lines");
        self.emit(out, addr, true, AccessCategory::for_level(level), false);
        self.bump_counter(level + 1, idx, out, depth + 1);
    }

    fn bump_counter(&mut self, level: usize, child_idx: u64, out: &mut Vec<MemAccess>, depth: usize) {
        let top = self.geometry.top_level();
        debug_assert!(level <= top, "bump beyond the root");
        let (line_idx, slot) = self.geometry.parent_of(level, child_idx);

        if level < top {
            if depth < MAX_CHAIN_DEPTH {
                self.ensure_cached(level, line_idx, out, depth);
                let addr = self.geometry.line_addr(level, line_idx);
                if let Some(evicted) = self.cache.insert_with_priority(addr, true, level as u8) {
                    if evicted.dirty {
                        self.writeback(evicted.addr, out, depth);
                    }
                }
            } else {
                // Backstop for pathological cache shapes: uncached RMW.
                let addr = self.geometry.line_addr(level, line_idx);
                self.emit(out, addr, false, AccessCategory::for_level(level), false);
                self.emit(out, addr, true, AccessCategory::for_level(level), false);
            }
        }
        // The root (level == top) is pinned on-chip: no traffic to update it.

        let arity = self.geometry.levels()[level].arity;
        let outcome = self.line_mut(level, line_idx).increment(slot);
        match outcome {
            IncrementOutcome::Ok => {}
            IncrementOutcome::Rebased => self.stats.record_rebase(level),
            IncrementOutcome::Overflow(event) => {
                self.stats
                    .record_overflow_kind(level, event.used_counters, arity, event.kind);
                self.handle_overflow(level, line_idx, event.span, out);
            }
        }
        if level < top && depth >= MAX_CHAIN_DEPTH {
            // The uncached RMW path above already wrote the line back, but
            // its parent still observed a write.
            self.bump_counter(level + 1, line_idx, out, depth + 1);
        }
    }

    fn handle_overflow(
        &mut self,
        level: usize,
        line_idx: u64,
        span: crate::counters::ReencryptSpan,
        out: &mut Vec<MemAccess>,
    ) {
        let arity = self.geometry.levels()[level].arity as u64;
        let children = self.children_count(level, line_idx) as u64;
        for slot in span.slots(arity as usize) {
            let child = line_idx * arity + slot as u64;
            if slot as u64 >= children {
                break;
            }
            let child_addr = if level == 0 {
                child * CACHELINE_BYTES as u64
            } else {
                self.geometry.line_addr(level - 1, child)
            };
            self.emit(out, child_addr, false, AccessCategory::Overflow, false);
            self.emit(out, child_addr, true, AccessCategory::Overflow, false);
        }
    }
}

/// A line evicted from the [`SeedCache`].
#[derive(Debug, Clone, Copy)]
struct SeedEvicted {
    addr: u64,
    dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct SeedEntry {
    addr: u64,
    dirty: bool,
    priority: u8,
}

/// The seed metadata cache, frozen alongside the seed engine: per-set
/// vectors ordered LRU → MRU (every touch is a `remove` + `push`
/// shuffle) and a set index computed with a hardware-division modulo.
/// [`super::cache::MetadataCache`] replaced both; this copy keeps the
/// baseline honest. Victim selection is semantically identical.
#[derive(Debug, Clone)]
struct SeedCache {
    /// `sets[i]` is ordered LRU → MRU.
    sets: Vec<Vec<SeedEntry>>,
    ways: usize,
    policy: ReplacementPolicy,
}

impl SeedCache {
    fn with_policy(capacity_bytes: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways >= 1);
        let lines = capacity_bytes / CACHELINE_BYTES;
        assert!(
            lines >= ways && capacity_bytes.is_multiple_of(ways * CACHELINE_BYTES),
            "capacity {capacity_bytes} incompatible with {ways} ways"
        );
        let num_sets = lines / ways;
        SeedCache { sets: vec![Vec::with_capacity(ways); num_sets], ways, policy }
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / CACHELINE_BYTES as u64) % self.sets.len() as u64) as usize
    }

    fn probe(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|e| e.addr == addr) {
            let entry = entries.remove(pos);
            entries.push(entry);
            true
        } else {
            false
        }
    }

    fn insert_with_priority(&mut self, addr: u64, dirty: bool, priority: u8) -> Option<SeedEvicted> {
        let set = self.set_index(addr);
        let ways = self.ways;
        let policy = self.policy;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|e| e.addr == addr) {
            let mut entry = entries.remove(pos);
            entry.dirty |= dirty;
            entry.priority = entry.priority.max(priority);
            entries.push(entry);
            return None;
        }
        let victim = if entries.len() == ways {
            let pos = match policy {
                ReplacementPolicy::Lru => 0,
                ReplacementPolicy::LevelAware => entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.priority)
                    .map_or(0, |(pos, _)| pos),
            };
            let v = entries.remove(pos);
            Some(SeedEvicted { addr: v.addr, dirty: v.dirty })
        } else {
            None
        };
        entries.push(SeedEntry { addr, dirty, priority });
        victim
    }
}
