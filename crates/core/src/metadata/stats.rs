//! Traffic accounting with the paper's Fig 16 categories, plus the
//! overflow instrumentation behind Fig 7/11/14.

use crate::obs::Histogram;

/// Number of bins in the "fraction of counter-cacheline used at overflow"
/// histogram (Fig 7).
pub const USED_FRACTION_BINS: usize = 32;

/// The traffic categories of Fig 5(b) / Fig 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessCategory {
    /// Program data.
    Data,
    /// Separately-stored MACs (Fig 20's unoptimized organization only).
    Mac,
    /// Encryption counters (`Ctr_Encr`).
    CtrEncr,
    /// Integrity-tree level 1 (`Ctr_1`).
    Ctr1,
    /// Integrity-tree level 2 (`Ctr_2`).
    Ctr2,
    /// Integrity-tree levels 3 and above (`Ctr_3 & Up`).
    Ctr3Up,
    /// Re-encryption / re-hash traffic caused by counter overflows.
    Overflow,
}

impl AccessCategory {
    /// All categories in Fig 16's stacking order.
    pub const ALL: [AccessCategory; 7] = [
        AccessCategory::Data,
        AccessCategory::Mac,
        AccessCategory::CtrEncr,
        AccessCategory::Ctr1,
        AccessCategory::Ctr2,
        AccessCategory::Ctr3Up,
        AccessCategory::Overflow,
    ];

    /// The category charged for a *demand* access to metadata level
    /// `level` (0 = encryption counters).
    #[must_use]
    pub fn for_level(level: usize) -> AccessCategory {
        match level {
            0 => AccessCategory::CtrEncr,
            1 => AccessCategory::Ctr1,
            2 => AccessCategory::Ctr2,
            _ => AccessCategory::Ctr3Up,
        }
    }

    /// Display label matching the paper's figure legends.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AccessCategory::Data => "Data",
            AccessCategory::Mac => "MAC",
            AccessCategory::CtrEncr => "Ctr_Encr",
            AccessCategory::Ctr1 => "Ctr_1",
            AccessCategory::Ctr2 => "Ctr_2",
            AccessCategory::Ctr3Up => "Ctr_3&Up",
            AccessCategory::Overflow => "Overflow",
        }
    }

    fn index(self) -> usize {
        match self {
            AccessCategory::Data => 0,
            AccessCategory::Mac => 1,
            AccessCategory::CtrEncr => 2,
            AccessCategory::Ctr1 => 3,
            AccessCategory::Ctr2 => 4,
            AccessCategory::Ctr3Up => 5,
            AccessCategory::Overflow => 6,
        }
    }
}

/// One memory access emitted by the metadata engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Physical address (line-aligned).
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Traffic category for Fig 16 accounting.
    pub category: AccessCategory,
    /// True when the access gates the return of the triggering data read
    /// (the data line itself plus its counter-fetch chain).
    pub critical: bool,
}

/// Aggregated engine statistics.
///
/// Derives `Eq` so the experiment layer's determinism tests can assert
/// that serial and parallel sweeps produce identical statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Demand data reads observed.
    pub data_reads: u64,
    /// Demand data writes observed.
    pub data_writes: u64,
    /// Memory reads per category.
    pub reads: [u64; 7],
    /// Memory writes per category.
    pub writes: [u64; 7],
    /// Counter overflows per metadata level (index 0 = encryption ctrs).
    pub overflows_by_level: Vec<u64>,
    /// MCR rebases per metadata level (overflows *avoided* by rebasing).
    pub rebases_by_level: Vec<u64>,
    /// Histogram of the fraction of the counter line in use when an
    /// overflow fired (Fig 7), pooled over levels.
    pub overflow_used_histogram: [u64; USED_FRACTION_BINS],
    /// Same histogram, but only for encryption-counter overflows.
    pub overflow_used_histogram_enc: [u64; USED_FRACTION_BINS],
    /// Overflow counts by [`crate::counters::OverflowKind`]: indexed
    /// FullReset, SetReset,
    /// BaseOverflow, ZccRewidthFailure, FormatSwitchReset.
    pub overflow_kinds: [u64; 5],
    /// Distribution of metadata-fetch chain depths: how many lines each
    /// cache-miss walk had to fetch before reaching a cached ancestor or
    /// the tree root. Depth 1 = the missing line's parent was cached.
    pub fetch_depths: Histogram,
    /// One-time-pad (counter-mode AES) operations implied by the traffic:
    /// one per data encrypt/decrypt and per overflow re-encryption.
    pub otp_ops: u64,
    /// MAC computations implied by the traffic: one per data access and
    /// per counter-line fetch-verify / writeback-recompute.
    pub mac_ops: u64,
    /// Batched MAC-verification groups: each cache-miss chain walk hands
    /// its fetched lines to the crypto unit as one batch (the functional
    /// plane's `mac_lines`), so `mac_ops / mac_batches` is the mean
    /// batch depth the hardware pipeline sees.
    pub mac_batches: u64,
}

impl EngineStats {
    /// Creates zeroed statistics for a tree with `levels` metadata levels.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        EngineStats {
            overflows_by_level: vec![0; levels],
            rebases_by_level: vec![0; levels],
            ..EngineStats::default()
        }
    }

    /// Records one emitted access, deriving the crypto work it implies.
    ///
    /// The crypto-op model (§III): every data access is decrypted or
    /// encrypted with a counter-mode one-time pad and MAC-verified; every
    /// counter-line access is MAC-verified on fetch (or re-MACed on
    /// writeback); overflow traffic re-encrypts and re-MACs a data line.
    /// Standalone MAC-line traffic carries no extra crypto — the MAC
    /// computation is already charged to the data access it belongs to.
    pub fn record(&mut self, access: &MemAccess) {
        let idx = access.category.index();
        if access.is_write {
            self.writes[idx] += 1;
        } else {
            self.reads[idx] += 1;
        }
        match access.category {
            AccessCategory::Data | AccessCategory::Overflow => {
                self.otp_ops += 1;
                self.mac_ops += 1;
            }
            AccessCategory::CtrEncr
            | AccessCategory::Ctr1
            | AccessCategory::Ctr2
            | AccessCategory::Ctr3Up => {
                self.mac_ops += 1;
            }
            AccessCategory::Mac => {}
        }
    }

    /// Records an overflow at `level` with `used` of `arity` counters in
    /// use.
    pub fn record_overflow(&mut self, level: usize, used: usize, arity: usize) {
        self.record_overflow_kind(level, used, arity, crate::counters::OverflowKind::FullReset);
    }

    /// Records an overflow including its [`crate::counters::OverflowKind`].
    pub fn record_overflow_kind(
        &mut self,
        level: usize,
        used: usize,
        arity: usize,
        kind: crate::counters::OverflowKind,
    ) {
        use crate::counters::OverflowKind;
        let kind_idx = match kind {
            OverflowKind::FullReset => 0,
            OverflowKind::SetReset => 1,
            OverflowKind::BaseOverflow => 2,
            OverflowKind::ZccRewidthFailure => 3,
            OverflowKind::FormatSwitchReset => 4,
        };
        self.overflow_kinds[kind_idx] += 1;
        self.overflows_by_level[level] += 1;
        let bin = (used * USED_FRACTION_BINS / arity).min(USED_FRACTION_BINS - 1);
        self.overflow_used_histogram[bin] += 1;
        if level == 0 {
            self.overflow_used_histogram_enc[bin] += 1;
        }
    }

    /// Records a rebase (an avoided overflow) at `level`.
    pub fn record_rebase(&mut self, level: usize) {
        self.rebases_by_level[level] += 1;
    }

    /// Total accesses (reads + writes) in `category`.
    #[must_use]
    pub fn total(&self, category: AccessCategory) -> u64 {
        let idx = category.index();
        self.reads[idx] + self.writes[idx]
    }

    /// Total memory accesses across all categories.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Demand data accesses (reads + writes).
    #[must_use]
    pub fn data_accesses(&self) -> u64 {
        self.data_reads + self.data_writes
    }

    /// The paper's headline traffic metric: memory accesses per data
    /// access (Fig 5b / Fig 16). 1.0 means no metadata overhead.
    #[must_use]
    pub fn traffic_per_data_access(&self) -> f64 {
        if self.data_accesses() == 0 {
            return 0.0;
        }
        self.total_accesses() as f64 / self.data_accesses() as f64
    }

    /// Accesses in `category` per data access.
    #[must_use]
    pub fn category_per_data_access(&self, category: AccessCategory) -> f64 {
        if self.data_accesses() == 0 {
            return 0.0;
        }
        self.total(category) as f64 / self.data_accesses() as f64
    }

    /// Total counter overflows across levels.
    #[must_use]
    pub fn total_overflows(&self) -> u64 {
        self.overflows_by_level.iter().sum()
    }

    /// Overflows per million memory accesses (the y-axis of Fig 11/14).
    #[must_use]
    pub fn overflows_per_million_accesses(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        self.total_overflows() as f64 * 1.0e6 / total as f64
    }

    /// Normalized Fig 7 histogram (sums to 1.0 unless empty).
    #[must_use]
    pub fn overflow_fraction_histogram(&self) -> [f64; USED_FRACTION_BINS] {
        let total: u64 = self.overflow_used_histogram.iter().sum();
        let mut out = [0.0; USED_FRACTION_BINS];
        if total > 0 {
            for (o, &count) in out.iter_mut().zip(&self.overflow_used_histogram) {
                *o = count as f64 / total as f64;
            }
        }
        out
    }

    /// Merges `other` into `self` (for multi-core aggregation).
    pub fn merge(&mut self, other: &EngineStats) {
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
        for i in 0..7 {
            self.reads[i] += other.reads[i];
            self.writes[i] += other.writes[i];
        }
        if self.overflows_by_level.len() < other.overflows_by_level.len() {
            self.overflows_by_level.resize(other.overflows_by_level.len(), 0);
            self.rebases_by_level.resize(other.rebases_by_level.len(), 0);
        }
        for (i, &v) in other.overflows_by_level.iter().enumerate() {
            self.overflows_by_level[i] += v;
        }
        for (i, &v) in other.rebases_by_level.iter().enumerate() {
            self.rebases_by_level[i] += v;
        }
        for i in 0..USED_FRACTION_BINS {
            self.overflow_used_histogram[i] += other.overflow_used_histogram[i];
            self.overflow_used_histogram_enc[i] += other.overflow_used_histogram_enc[i];
        }
        for i in 0..self.overflow_kinds.len() {
            self.overflow_kinds[i] += other.overflow_kinds[i];
        }
        self.fetch_depths.merge(&other.fetch_depths);
        self.otp_ops += other.otp_ops;
        self.mac_ops += other.mac_ops;
        self.mac_batches += other.mac_batches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_for_level_matches_fig16_legend() {
        assert_eq!(AccessCategory::for_level(0), AccessCategory::CtrEncr);
        assert_eq!(AccessCategory::for_level(1), AccessCategory::Ctr1);
        assert_eq!(AccessCategory::for_level(2), AccessCategory::Ctr2);
        assert_eq!(AccessCategory::for_level(3), AccessCategory::Ctr3Up);
        assert_eq!(AccessCategory::for_level(9), AccessCategory::Ctr3Up);
    }

    #[test]
    fn record_and_ratios() {
        let mut s = EngineStats::new(3);
        s.data_reads = 2;
        s.data_writes = 0;
        for category in [AccessCategory::Data, AccessCategory::Data, AccessCategory::CtrEncr] {
            s.record(&MemAccess { addr: 0, is_write: false, category, critical: true });
        }
        assert_eq!(s.total(AccessCategory::Data), 2);
        assert_eq!(s.total_accesses(), 3);
        assert!((s.traffic_per_data_access() - 1.5).abs() < 1e-12);
        assert!((s.category_per_data_access(AccessCategory::CtrEncr) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overflow_histogram_bins() {
        let mut s = EngineStats::new(2);
        s.record_overflow(0, 64, 64); // fully used -> last bin
        s.record_overflow(1, 1, 64); // sparse -> first bin
        assert_eq!(s.overflow_used_histogram[USED_FRACTION_BINS - 1], 1);
        assert_eq!(s.overflow_used_histogram[0], 1);
        assert_eq!(s.overflow_used_histogram_enc[USED_FRACTION_BINS - 1], 1);
        assert_eq!(s.overflow_used_histogram_enc[0], 0);
        assert_eq!(s.total_overflows(), 2);
        let h = s.overflow_fraction_histogram();
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflows_per_million() {
        let mut s = EngineStats::new(1);
        s.record_overflow(0, 1, 64);
        for _ in 0..1000 {
            s.record(&MemAccess {
                addr: 0,
                is_write: false,
                category: AccessCategory::Data,
                critical: true,
            });
        }
        assert!((s.overflows_per_million_accesses() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn crypto_ops_follow_the_traffic_model() {
        let mut s = EngineStats::new(1);
        let acc = |category, is_write| MemAccess { addr: 0, is_write, category, critical: false };
        // Data: OTP + MAC. Counter levels: MAC only. MAC lines: nothing
        // (already charged with the data access). Overflow: OTP + MAC.
        s.record(&acc(AccessCategory::Data, false));
        assert_eq!((s.otp_ops, s.mac_ops), (1, 1));
        s.record(&acc(AccessCategory::CtrEncr, false));
        s.record(&acc(AccessCategory::Ctr3Up, true));
        assert_eq!((s.otp_ops, s.mac_ops), (1, 3));
        s.record(&acc(AccessCategory::Mac, false));
        assert_eq!((s.otp_ops, s.mac_ops), (1, 3));
        s.record(&acc(AccessCategory::Overflow, true));
        assert_eq!((s.otp_ops, s.mac_ops), (2, 4));
    }

    #[test]
    fn merge_includes_observability_fields() {
        let mut a = EngineStats::new(1);
        let mut b = EngineStats::new(1);
        a.fetch_depths.record(2);
        b.fetch_depths.record(5);
        b.otp_ops = 3;
        b.mac_ops = 7;
        a.merge(&b);
        assert_eq!(a.fetch_depths.count(), 2);
        assert_eq!(a.fetch_depths.max(), Some(5));
        assert_eq!(a.otp_ops, 3);
        assert_eq!(a.mac_ops, 7);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EngineStats::new(2);
        let mut b = EngineStats::new(4);
        a.data_reads = 1;
        b.data_writes = 2;
        b.record_overflow(3, 10, 64);
        b.record_rebase(0);
        a.merge(&b);
        assert_eq!(a.data_accesses(), 3);
        assert_eq!(a.overflows_by_level.len(), 4);
        assert_eq!(a.overflows_by_level[3], 1);
        assert_eq!(a.rebases_by_level[0], 1);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = EngineStats::new(0);
        assert_eq!(s.traffic_per_data_access(), 0.0);
        assert_eq!(s.overflows_per_million_accesses(), 0.0);
        assert_eq!(s.overflow_fraction_histogram(), [0.0; USED_FRACTION_BINS]);
    }
}
