//! Error types for the core crate.

use std::error::Error;
use std::fmt;

/// Raised by the functional secure memory when verification fails — i.e.
/// when an integrity violation (tampering or replay) is *detected*.
///
/// Carrying the location lets tests assert that the violation was caught at
/// the right place in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The MAC of a data cacheline did not verify.
    DataMac {
        /// Line address of the offending data cacheline.
        line_addr: u64,
    },
    /// The MAC of a counter line at some tree level did not verify.
    CounterMac {
        /// Tree level (0 = encryption counters).
        level: usize,
        /// Index of the counter line within its level.
        line_idx: u64,
    },
    /// A data cacheline has stored ciphertext but no stored MAC. A missing
    /// MAC is a verification failure in its own right — it must never be
    /// treated as "MAC = 0", which an adversary could trivially forge.
    MissingMac {
        /// Line address of the offending data cacheline.
        line_addr: u64,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::DataMac { line_addr } => {
                write!(f, "data MAC verification failed for line {line_addr:#x}")
            }
            IntegrityError::CounterMac { level, line_idx } => {
                write!(
                    f,
                    "counter MAC verification failed at tree level {level}, line {line_idx}"
                )
            }
            IntegrityError::MissingMac { line_addr } => {
                write!(f, "no stored MAC for written data line {line_addr:#x}")
            }
        }
    }
}

impl Error for IntegrityError {}

/// Raised when a 64-byte counter-line image cannot be decoded back into a
/// line — i.e. the image violates the bit-exact layout rules of
/// [`crate::counters::morph`]'s codec. Off-chip images only ever come from
/// this codec, so a decode failure means the stored image was corrupted
/// (torn snapshot write, bit rot, tampering below the MAC layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The ZCC bit-vector marks more than 64 counters as non-zero, which no
    /// ZCC width schedule can represent.
    TooManyNonZero {
        /// Population count of the bit-vector.
        nonzero: usize,
    },
    /// The stored `ctr-sz` field disagrees with the width derived from the
    /// bit-vector population count.
    CtrSizeMismatch {
        /// The `ctr-sz` value stored in the image.
        stored: u64,
        /// The width the bit-vector population implies.
        derived: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::TooManyNonZero { nonzero } => {
                write!(f, "ZCC image marks {nonzero} non-zero counters (at most 64 encodable)")
            }
            CodecError::CtrSizeMismatch { stored, derived } => {
                write!(
                    f,
                    "stored ctr-sz {stored} disagrees with bit-vector-derived width {derived}"
                )
            }
        }
    }
}

impl Error for CodecError {}

/// Raised by the [`crate::functional::SecureMemory`] adversary hooks when an
/// attack cannot be mounted because the targeted off-chip state does not
/// exist (e.g. tampering a line that was never written).
///
/// These are harness errors, not security events: a returned `TamperError`
/// means the attack was a no-op, not that it went undetected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperError {
    /// The targeted data line has never been written, so there is no
    /// off-chip ciphertext or MAC to corrupt.
    NeverWritten {
        /// Index of the targeted data line.
        data_line: u64,
    },
    /// The targeted counter line has never been materialized off-chip.
    NoCounterLine {
        /// Tree level (0 = encryption counters).
        level: usize,
        /// Index of the counter line within its level.
        line_idx: u64,
    },
    /// The targeted tree level does not exist in this geometry.
    NoSuchLevel {
        /// The requested level.
        level: usize,
        /// Number of levels in the tree.
        levels: usize,
    },
    /// The byte offset is outside the 64-byte cacheline.
    OffsetOutOfRange {
        /// The requested byte offset.
        offset: usize,
    },
    /// The counter slot is outside the line's arity.
    SlotOutOfRange {
        /// The requested slot.
        slot: usize,
        /// The line's arity.
        arity: usize,
    },
}

impl fmt::Display for TamperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperError::NeverWritten { data_line } => {
                write!(f, "cannot tamper never-written data line {data_line}")
            }
            TamperError::NoCounterLine { level, line_idx } => {
                write!(f, "no counter line {line_idx} at tree level {level}")
            }
            TamperError::NoSuchLevel { level, levels } => {
                write!(f, "tree level {level} does not exist ({levels} levels)")
            }
            TamperError::OffsetOutOfRange { offset } => {
                write!(f, "byte offset {offset} outside the 64-byte line")
            }
            TamperError::SlotOutOfRange { slot, arity } => {
                write!(f, "counter slot {slot} outside arity {arity}")
            }
        }
    }
}

impl Error for TamperError {}

/// Raised by [`crate::concurrent::ShardPlan`] when a requested shard
/// partition is impossible. Planning failures are configuration errors the
/// caller must handle (a CLI flag, a recovered snapshot header), so they are
/// typed rather than panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// Zero shards requested — a partition must have at least one part.
    ZeroShards,
    /// The protected space is empty or not a whole number of cachelines.
    UnalignedMemory {
        /// The rejected byte count.
        memory_bytes: u64,
    },
    /// More shards than data lines: some shard would own no address range
    /// (and therefore no subtree).
    TooManyShards {
        /// The requested shard count.
        shards: usize,
        /// Data lines available to partition.
        data_lines: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "shard plan requires at least one shard"),
            ShardError::UnalignedMemory { memory_bytes } => {
                write!(f, "protected size {memory_bytes} is not a whole number of cachelines")
            }
            ShardError::TooManyShards { shards, data_lines } => {
                write!(f, "{shards} shards over {data_lines} data lines leaves a shard empty")
            }
        }
    }
}

impl Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = IntegrityError::DataMac { line_addr: 0x40 };
        assert_eq!(e.to_string(), "data MAC verification failed for line 0x40");
        let e = IntegrityError::CounterMac { level: 2, line_idx: 9 };
        assert!(e.to_string().contains("level 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IntegrityError>();
        assert_send_sync::<TamperError>();
    }

    #[test]
    fn missing_mac_and_tamper_errors_display() {
        let e = IntegrityError::MissingMac { line_addr: 0x80 };
        assert!(e.to_string().contains("no stored MAC"), "{e}");
        let e = TamperError::NeverWritten { data_line: 7 };
        assert_eq!(e.to_string(), "cannot tamper never-written data line 7");
        let e = TamperError::NoCounterLine { level: 1, line_idx: 3 };
        assert!(e.to_string().contains("level 1"), "{e}");
        let e = TamperError::NoSuchLevel { level: 9, levels: 3 };
        assert!(e.to_string().contains("9"), "{e}");
        let e = TamperError::OffsetOutOfRange { offset: 64 };
        assert!(e.to_string().contains("64"), "{e}");
        let e = TamperError::SlotOutOfRange { slot: 130, arity: 128 };
        assert!(e.to_string().contains("130"), "{e}");
    }

    #[test]
    fn shard_errors_display() {
        assert_eq!(ShardError::ZeroShards.to_string(), "shard plan requires at least one shard");
        let e = ShardError::UnalignedMemory { memory_bytes: 100 };
        assert!(e.to_string().contains("100"), "{e}");
        let e = ShardError::TooManyShards { shards: 9, data_lines: 4 };
        assert!(e.to_string().contains("9 shards"), "{e}");
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardError>();
    }
}
