//! Error types for the core crate.

use std::error::Error;
use std::fmt;

/// Raised by the functional secure memory when verification fails — i.e.
/// when an integrity violation (tampering or replay) is *detected*.
///
/// Carrying the location lets tests assert that the violation was caught at
/// the right place in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The MAC of a data cacheline did not verify.
    DataMac {
        /// Line address of the offending data cacheline.
        line_addr: u64,
    },
    /// The MAC of a counter line at some tree level did not verify.
    CounterMac {
        /// Tree level (0 = encryption counters).
        level: usize,
        /// Index of the counter line within its level.
        line_idx: u64,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::DataMac { line_addr } => {
                write!(f, "data MAC verification failed for line {line_addr:#x}")
            }
            IntegrityError::CounterMac { level, line_idx } => {
                write!(
                    f,
                    "counter MAC verification failed at tree level {level}, line {line_idx}"
                )
            }
        }
    }
}

impl Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = IntegrityError::DataMac { line_addr: 0x40 };
        assert_eq!(e.to_string(), "data MAC verification failed for line 0x40");
        let e = IntegrityError::CounterMac { level: 2, line_idx: 9 };
        assert!(e.to_string().contains("level 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IntegrityError>();
    }
}
