//! Verifiable integrity proofs: the authenticated read API (ISSUE 9).
//!
//! The functional tree detects tampering *internally* — [`SecureMemory::read`]
//! walks the counter chain it holds. This module turns that walk into an
//! artifact: [`SecureMemory::prove`] emits a compact, versioned,
//! varint-framed [`Proof`] carrying, for each requested data line, the
//! ciphertext + data MAC plus the deduplicated counter-line chain up to the
//! on-chip root, and a standalone [`verify_proof`] checks it against a
//! *published root* with no access to the memory image at all — the same
//! boundary-checkable framing SecDDR uses, and the varint-framed proof
//! encoding grovedb's Merk proofs use.
//!
//! # Proof contents and trust chain
//!
//! A serial proof contains:
//!
//! - a header: format version, the tree configuration, the protected memory
//!   size, and the construction key (a *model* concession — the snapshot
//!   formats already externalize the key as the stand-in for the SoC's
//!   sealed state; see [`crate::persist`]);
//! - one entry per proven data line (sorted, deduplicated): line index,
//!   64-byte ciphertext, stored 64-bit data MAC;
//! - one entry per covering counter line (sorted, deduplicated by
//!   `(level, line_idx)` — exactly the keying of the functional plane's
//!   `chain_lines_of`, plus the top line): the 64-byte MAC-input image
//!   (`encode_for_mac`) and the stored 64-bit MAC.
//!
//! Verification rebuilds the geometry from the header, requires the node
//! set to be *exactly* the chain the data lines need (nothing missing,
//! nothing extra), decodes every counter body under the level's configured
//! organization, recomputes every counter-line MAC keyed by its parent's
//! decoded counter (top keyed 0) in one batched
//! [`MacKey::mac_lines_into`] pass, recomputes every data MAC under the
//! level-0 decoded counters, and finally checks that the top entry hashes
//! to the published root (the same FNV digest as
//! [`SecureMemory::root_digest`]). The chain is closed: the root binds the
//! top body, each body keys its children's MACs, and the level-0 bodies
//! key the data MACs.
//!
//! Multi-line proofs share upper-tree nodes — one copy per `(level, line)`
//! — so proof size grows sub-linearly in the line count, and *shrinks*
//! with tree arity: a 128-ary MorphTree needs fewer levels than the SC-64
//! baseline for the same memory, the paper-unevaluated result the
//! `morphtree perf` proof sweep records.
//!
//! [`ShardedMemory::prove`] composes per-shard sub-proofs under the
//! coalesced top: a [`ShardedProof`] carries the full per-shard digest
//! vector (bound to the published combined root by
//! [`crate::concurrent`]'s `fold_digests` chain) plus one embedded
//! [`Proof`] per shard that owns a proven line, each verified against its
//! own digest-vector entry.
//!
//! # Framing
//!
//! All counts and indices are canonical LEB128 varints (minimal length
//! enforced on decode); MACs, digests and key bytes are fixed-width
//! little-endian. The encoding ends with an FNV-1a checksum of everything
//! before it, and decode demands exact consumption, canonical varints and
//! strictly ascending entry order — so decode(bytes) re-encodes
//! byte-identically and **no byte of a proof is slack**: flipping any
//! single byte makes [`decode_proof`] or [`verify_proof`] fail with a
//! typed [`ProofError`] (the property the proof codec tests sweep).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use morphtree_crypto::{CtrModeCipher, MacKey, MacTag};

use crate::concurrent::{fold_digests, ShardedMemory};
use crate::concurrent::ShardPlan;
use crate::counters::morph::MorphLine;
use crate::counters::split::{SplitConfig, SplitLine};
use crate::counters::{CounterLine, CounterOrg, Line};
use crate::error::CodecError;
use crate::functional::SecureMemory;
use crate::persist::codec::{fnv1a, ByteReader, ByteWriter};
use crate::persist::{read_config, write_config, MAX_MEMORY_BYTES};
use crate::tree::{TreeConfig, TreeGeometry};
use crate::CACHELINE_BYTES;

/// Proof file magic (`MTPR` = MorphTree PRoof).
pub const MAGIC: [u8; 4] = *b"MTPR";
/// Current proof format version.
pub const VERSION: u8 = 1;

/// Header kind byte: a serial (single-subtree) proof.
const KIND_SERIAL: u8 = 1;
/// Header kind byte: a sharded (composed) proof.
const KIND_SHARDED: u8 = 2;

/// Why a proof could not be produced, decoded, or verified.
///
/// Every variant is a *diagnosis*, mirroring the persistence layer's
/// [`crate::persist::RecoveryError`] convention: verification refuses to
/// guess, and the CLI maps any of these to the integrity exit code —
/// distinguishable from I/O or usage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The input does not start with the proof magic.
    BadMagic,
    /// The proof was written by an incompatible format version.
    UnsupportedVersion {
        /// The version the file declares.
        version: u8,
    },
    /// The header kind byte is neither serial nor sharded.
    UnknownKind {
        /// The kind byte the file declares.
        kind: u8,
    },
    /// The input ended before a field did.
    Truncated {
        /// Byte offset at which the missing field started.
        offset: usize,
    },
    /// The trailing FNV checksum does not match the encoded body.
    ChecksumMismatch,
    /// Bytes remain after the checksum — a proof is exactly self-framing.
    TrailingBytes {
        /// Number of unconsumed bytes.
        len: usize,
    },
    /// A varint is non-canonical (overlong or overflowing 64 bits).
    NonCanonicalVarint {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// The embedded tree configuration is malformed.
    BadConfig {
        /// Byte offset where the violation was detected.
        offset: usize,
    },
    /// The declared protected-memory size is zero, unaligned, or absurd,
    /// or the configuration's counter organizations are outside the
    /// supported arity range.
    BadGeometry {
        /// The rejected byte count.
        memory_bytes: u64,
    },
    /// A proof must cover at least one data line.
    EmptyLineSet,
    /// Data-line or node entries are not strictly ascending — the
    /// canonical order decode demands.
    UnsortedEntries {
        /// Byte offset of the out-of-order entry.
        offset: usize,
    },
    /// A proven data line lies outside the declared geometry.
    LineOutOfRange {
        /// The offending data line index.
        line: u64,
    },
    /// A requested data line was never written, so there is no off-chip
    /// ciphertext/MAC to prove (never-written lines read as zeroes by
    /// definition and carry no tree state).
    NeverWritten {
        /// The offending data line index.
        line: u64,
    },
    /// A counter node names a level or line outside the geometry.
    NodeOutOfRange {
        /// Tree level of the offending node.
        level: usize,
        /// Line index of the offending node.
        line_idx: u64,
    },
    /// The proof is missing a counter node its data lines need.
    MissingNode {
        /// Tree level of the missing node.
        level: usize,
        /// Line index of the missing node.
        line_idx: u64,
    },
    /// The proof carries a counter node its data lines do not need —
    /// rejected so no node entry is slack.
    UnexpectedNode {
        /// Tree level of the surplus node.
        level: usize,
        /// Line index of the surplus node.
        line_idx: u64,
    },
    /// A counter-node body is not a valid encoding for its level's
    /// organization.
    BadNodeImage {
        /// Tree level of the offending node.
        level: usize,
        /// Line index of the offending node.
        line_idx: u64,
        /// The codec diagnosis.
        source: CodecError,
    },
    /// A counter node's stored MAC does not match the recomputation.
    NodeMacMismatch {
        /// Tree level of the failing node.
        level: usize,
        /// Line index of the failing node.
        line_idx: u64,
    },
    /// A data line's stored MAC does not match the recomputation.
    DataMacMismatch {
        /// The failing data line index.
        line: u64,
    },
    /// The proof's top entry does not hash to the published root.
    RootMismatch {
        /// The root the verifier trusts.
        published: u64,
        /// The root the proof derives.
        computed: u64,
    },
    /// The sharded header's partition is impossible (zero shards, more
    /// shards than lines).
    BadShardPlan {
        /// The declared shard count.
        shards: u64,
    },
    /// A sub-proof names a shard outside the declared partition.
    ShardOutOfRange {
        /// The offending shard index.
        shard: usize,
    },
    /// A sub-proof's key is not the tenant key's derivation for its shard.
    ShardKeyMismatch {
        /// The offending shard index.
        shard: usize,
    },
    /// A sub-proof's declared memory size is not its shard's partition
    /// range.
    ShardMemoryMismatch {
        /// The offending shard index.
        shard: usize,
    },
    /// A sub-proof failed, verified against its digest-vector entry.
    Shard {
        /// The failing shard index.
        shard: usize,
        /// The sub-proof's diagnosis (a `RootMismatch` here means the
        /// sub-proof does not derive its shard's digest-vector entry).
        source: Box<ProofError>,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::BadMagic => write!(f, "not a morphtree proof (bad magic)"),
            ProofError::UnsupportedVersion { version } => {
                write!(f, "unsupported proof format version {version}")
            }
            ProofError::UnknownKind { kind } => write!(f, "unknown proof kind byte {kind}"),
            ProofError::Truncated { offset } => {
                write!(f, "proof truncated at byte offset {offset}")
            }
            ProofError::ChecksumMismatch => write!(f, "proof checksum mismatch"),
            ProofError::TrailingBytes { len } => {
                write!(f, "{len} trailing byte(s) after the proof checksum")
            }
            ProofError::NonCanonicalVarint { offset } => {
                write!(f, "non-canonical varint at byte offset {offset}")
            }
            ProofError::BadConfig { offset } => {
                write!(f, "malformed tree configuration at byte offset {offset}")
            }
            ProofError::BadGeometry { memory_bytes } => {
                write!(f, "proof declares an invalid geometry ({memory_bytes} bytes)")
            }
            ProofError::EmptyLineSet => write!(f, "proof covers no data lines"),
            ProofError::UnsortedEntries { offset } => {
                write!(f, "proof entries out of canonical order at byte offset {offset}")
            }
            ProofError::LineOutOfRange { line } => {
                write!(f, "proven data line {line} outside the declared geometry")
            }
            ProofError::NeverWritten { line } => {
                write!(f, "cannot prove never-written data line {line}")
            }
            ProofError::NodeOutOfRange { level, line_idx } => {
                write!(f, "counter node (level {level}, line {line_idx}) outside the geometry")
            }
            ProofError::MissingNode { level, line_idx } => {
                write!(f, "proof is missing counter node (level {level}, line {line_idx})")
            }
            ProofError::UnexpectedNode { level, line_idx } => {
                write!(f, "proof carries unneeded counter node (level {level}, line {line_idx})")
            }
            ProofError::BadNodeImage { level, line_idx, source } => {
                write!(
                    f,
                    "counter node (level {level}, line {line_idx}) body is undecodable: {source}"
                )
            }
            ProofError::NodeMacMismatch { level, line_idx } => {
                write!(f, "counter MAC mismatch at (level {level}, line {line_idx})")
            }
            ProofError::DataMacMismatch { line } => {
                write!(f, "data MAC mismatch for line {line}")
            }
            ProofError::RootMismatch { published, computed } => {
                write!(
                    f,
                    "root mismatch: proof derives {computed:#018x}, published {published:#018x}"
                )
            }
            ProofError::BadShardPlan { shards } => {
                write!(f, "proof declares an impossible {shards}-shard partition")
            }
            ProofError::ShardOutOfRange { shard } => {
                write!(f, "sub-proof names shard {shard} outside the partition")
            }
            ProofError::ShardKeyMismatch { shard } => {
                write!(f, "sub-proof for shard {shard} carries the wrong derived key")
            }
            ProofError::ShardMemoryMismatch { shard } => {
                write!(f, "sub-proof for shard {shard} declares the wrong memory size")
            }
            ProofError::Shard { shard, source } => {
                write!(f, "sub-proof for shard {shard} failed: {source}")
            }
        }
    }
}

impl Error for ProofError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProofError::BadNodeImage { source, .. } => Some(source),
            ProofError::Shard { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// One proven data line: its off-chip ciphertext and stored MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofData {
    /// Data line index within the proof's geometry.
    pub line: u64,
    /// The stored 64-byte ciphertext.
    pub ciphertext: [u8; CACHELINE_BYTES],
    /// The stored data MAC.
    pub mac: u64,
}

/// One covering counter node: its MAC-input image and stored MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofNode {
    /// Tree level (0 = encryption counters, `top_level` = on-chip root).
    pub level: usize,
    /// Line index within the level.
    pub line_idx: u64,
    /// The 64-byte `encode_for_mac` image (MAC field zeroed).
    pub body: [u8; CACHELINE_BYTES],
    /// The stored counter-line MAC (0-keyed for the top line).
    pub mac: u64,
}

/// A self-contained integrity proof for a set of data lines of one
/// [`SecureMemory`] subtree, checkable against a published root with no
/// memory image (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof {
    config: TreeConfig,
    memory_bytes: u64,
    key: [u8; 16],
    /// Strictly ascending by line.
    data: Vec<ProofData>,
    /// Strictly ascending by `(level, line_idx)`; always contains the top.
    nodes: Vec<ProofNode>,
}

/// A composed proof over a [`ShardedMemory`]: the full per-shard digest
/// vector (bound to the published combined root by the `fold_digests`
/// chain) plus one embedded [`Proof`] per shard owning a proven line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedProof {
    key: [u8; 16],
    memory_bytes: u64,
    /// Per-shard root digests, one per shard of the partition.
    digests: Vec<u64>,
    /// `(shard index, sub-proof)`, strictly ascending by shard.
    subs: Vec<(usize, Proof)>,
}

/// A decoded proof of either kind (the CLI auto-detects from the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyProof {
    /// A serial single-subtree proof.
    Serial(Proof),
    /// A sharded composed proof.
    Sharded(ShardedProof),
}

/// Deterministic size/coverage facts about a verified proof, for the
/// metrics plane (no wall-clock here — timing belongs to `morphtree perf`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Data lines the proof covers.
    pub data_lines: u64,
    /// Counter nodes the proof carries (across all sub-proofs).
    pub nodes: u64,
    /// MAC recomputations verification performed.
    pub mac_computes: u64,
    /// Sub-proofs in a sharded proof (0 for a serial proof).
    pub shards: u64,
}

// ---------------------------------------------------------------------
// Varint framing (canonical LEB128).
// ---------------------------------------------------------------------

fn write_varint(w: &mut ByteWriter, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.u8(byte);
            return;
        }
        w.u8(byte | 0x80);
    }
}

fn read_varint(r: &mut ByteReader<'_>) -> Result<u64, ProofError> {
    let start = r.offset();
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.u8().map_err(|t| ProofError::Truncated { offset: t.offset })?;
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the final bit; anything more
        // overflows 64 bits.
        if shift == 63 && payload > 1 {
            return Err(ProofError::NonCanonicalVarint { offset: start });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            // Minimal-length rule: a zero final byte after a continuation
            // encodes nothing and would make the framing ambiguous.
            if byte == 0 && shift != 0 {
                return Err(ProofError::NonCanonicalVarint { offset: start });
            }
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(ProofError::NonCanonicalVarint { offset: start });
        }
    }
}

// ---------------------------------------------------------------------
// Helpers shared by prove and verify.
// ---------------------------------------------------------------------

/// Sorted, deduplicated copy of a requested line set.
pub(crate) fn canonical_lines(lines: &[u64]) -> Vec<u64> {
    let mut uniq = lines.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    uniq
}

/// The exact node set a proof for `lines` must carry: the deduplicated
/// ancestor chain of every line (levels `0..top`) plus the top line —
/// the same `(level, line_idx)` keying as the functional plane's
/// `chain_lines_of`.
fn required_nodes(geometry: &TreeGeometry, lines: &[u64]) -> BTreeSet<(usize, u64)> {
    let mut keys = BTreeSet::new();
    for &line in lines {
        let mut child = line;
        for level in 0..geometry.top_level() {
            let (line_idx, _) = geometry.parent_of(level, child);
            keys.insert((level, line_idx));
            child = line_idx;
        }
    }
    keys.insert((geometry.top_level(), 0));
    keys
}

/// Domain-separated MAC key, mirroring [`SecureMemory::new`].
fn mac_key_of(key: [u8; 16]) -> MacKey {
    let mut seed = key;
    seed[0] ^= 0x5a;
    MacKey::new(seed)
}

/// The supported split-counter arity range (power-of-two line layouts the
/// codec can instantiate without panicking).
fn org_supported(org: CounterOrg) -> bool {
    match org {
        CounterOrg::Split { arity } => {
            arity.is_power_of_two() && (8..=128).contains(&arity)
        }
        CounterOrg::Morph(_) => true,
    }
}

/// Validates a decoded header's geometry and rebuilds it.
fn geometry_of(config: &TreeConfig, memory_bytes: u64) -> Result<TreeGeometry, ProofError> {
    let bad = ProofError::BadGeometry { memory_bytes };
    if memory_bytes == 0
        || !memory_bytes.is_multiple_of(CACHELINE_BYTES as u64)
        || memory_bytes > MAX_MEMORY_BYTES
    {
        return Err(bad);
    }
    if !org_supported(config.org(0)) || !config.tree_orgs().iter().all(|&o| org_supported(o)) {
        return Err(bad);
    }
    Ok(TreeGeometry::new(config, memory_bytes))
}

fn decode_node_line(
    config: &TreeConfig,
    node: &ProofNode,
) -> Result<Line, ProofError> {
    match config.org(node.level) {
        CounterOrg::Split { arity } => Ok(Line::from(SplitLine::decode(
            SplitConfig::with_arity(arity),
            &node.body,
        ))),
        CounterOrg::Morph(mode) => MorphLine::decode(mode, &node.body)
            .map(Line::from)
            .map_err(|source| ProofError::BadNodeImage {
                level: node.level,
                line_idx: node.line_idx,
                source,
            }),
    }
}

// ---------------------------------------------------------------------
// Prove.
// ---------------------------------------------------------------------

impl SecureMemory {
    /// Emits a verifiable integrity proof for `lines` (deduplicated and
    /// sorted): per-line ciphertext + data MAC, plus the shared counter
    /// chain up to the on-chip root. Check it with [`verify_proof`]
    /// against [`SecureMemory::root_digest`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProofError`] when `lines` is empty, names a line
    /// outside the geometry, or names a line that was never written
    /// (never-written lines carry no off-chip state to prove).
    pub fn prove(&self, lines: &[u64]) -> Result<Proof, ProofError> {
        let uniq = canonical_lines(lines);
        if uniq.is_empty() {
            return Err(ProofError::EmptyLineSet);
        }
        let geometry = self.geometry();
        let mut data = Vec::with_capacity(uniq.len());
        for &line in &uniq {
            if line >= geometry.data_lines() {
                return Err(ProofError::LineOutOfRange { line });
            }
            let (ciphertext, mac) = self
                .data_line_state(line)
                .ok_or(ProofError::NeverWritten { line })?;
            data.push(ProofData { line, ciphertext, mac });
        }
        let mut nodes = Vec::new();
        for (level, line_idx) in required_nodes(geometry, &uniq) {
            // Every written line's full ancestor chain is materialized by
            // the write path; an absent node means the store was mutated
            // outside it, which a proof must not paper over.
            let node = self.level_stores()[level]
                .get(line_idx)
                .ok_or(ProofError::MissingNode { level, line_idx })?;
            nodes.push(ProofNode {
                level,
                line_idx,
                body: node.encode_for_mac(),
                mac: node.mac(),
            });
        }
        Ok(Proof {
            config: self.config().clone(),
            memory_bytes: geometry.memory_bytes(),
            key: self.key(),
            data,
            nodes,
        })
    }
}

impl ShardedMemory {
    /// Emits a composed proof for `lines` (global indices): one sub-proof
    /// per owning shard under the full digest vector. Recombines first so
    /// the digests match [`ShardedMemory::combined_root`], which is the
    /// published root [`verify_proof`] checks an [`AnyProof::Sharded`]
    /// against.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProofError`] (line coordinates globalized) under
    /// the same conditions as [`SecureMemory::prove`].
    pub fn prove(&mut self, lines: &[u64]) -> Result<ShardedProof, ProofError> {
        self.recombine();
        let plan = *self.plan();
        let uniq = canonical_lines(lines);
        if uniq.is_empty() {
            return Err(ProofError::EmptyLineSet);
        }
        let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); plan.shards()];
        for &line in &uniq {
            if line >= plan.data_lines() {
                return Err(ProofError::LineOutOfRange { line });
            }
            let shard = plan.shard_of(line);
            by_shard[shard].push(plan.local_line(line));
        }
        let mut subs = Vec::new();
        for (shard, local) in by_shard.iter().enumerate() {
            if local.is_empty() {
                continue;
            }
            let sub = self.shard(shard).prove(local).map_err(|e| match e {
                ProofError::LineOutOfRange { line } => ProofError::LineOutOfRange {
                    line: plan.global_line(shard, line),
                },
                ProofError::NeverWritten { line } => ProofError::NeverWritten {
                    line: plan.global_line(shard, line),
                },
                other => ProofError::Shard { shard, source: Box::new(other) },
            })?;
            subs.push((shard, sub));
        }
        Ok(ShardedProof {
            key: self.tenant_key(),
            memory_bytes: plan.memory_bytes(),
            digests: self.shard_digests().to_vec(),
            subs,
        })
    }
}

// ---------------------------------------------------------------------
// Verify.
// ---------------------------------------------------------------------

/// Checks a serial [`Proof`] against a published root (the prover's
/// [`SecureMemory::root_digest`]) with no access to the memory image.
///
/// # Errors
///
/// Returns the first [`ProofError`] found: structural violations (wrong
/// node set, undecodable bodies), MAC mismatches, or a root mismatch.
pub fn verify_proof(proof: &Proof, published_root: u64) -> Result<ProofStats, ProofError> {
    let geometry = geometry_of(&proof.config, proof.memory_bytes)?;
    if proof.data.is_empty() {
        return Err(ProofError::EmptyLineSet);
    }
    for entry in &proof.data {
        if entry.line >= geometry.data_lines() {
            return Err(ProofError::LineOutOfRange { line: entry.line });
        }
    }
    for node in &proof.nodes {
        if node.level > geometry.top_level()
            || node.line_idx >= geometry.levels()[node.level].lines
        {
            return Err(ProofError::NodeOutOfRange {
                level: node.level,
                line_idx: node.line_idx,
            });
        }
    }

    // The node set must be *exactly* the chain the data lines need.
    let lines: Vec<u64> = proof.data.iter().map(|d| d.line).collect();
    let required = required_nodes(&geometry, &lines);
    let carried: BTreeSet<(usize, u64)> =
        proof.nodes.iter().map(|n| (n.level, n.line_idx)).collect();
    if let Some(&(level, line_idx)) = required.difference(&carried).next() {
        return Err(ProofError::MissingNode { level, line_idx });
    }
    if let Some(&(level, line_idx)) = carried.difference(&required).next() {
        return Err(ProofError::UnexpectedNode { level, line_idx });
    }

    // Decode every node body under its level's organization; the decoded
    // counters key the child MACs below.
    let mut decoded = Vec::with_capacity(proof.nodes.len());
    for node in &proof.nodes {
        decoded.push(decode_node_line(&proof.config, node)?);
    }
    let node_at = |level: usize, line_idx: u64| -> usize {
        // The node list is sorted by (level, line_idx) and the set check
        // above guarantees presence.
        proof
            .nodes
            .binary_search_by_key(&(level, line_idx), |n| (n.level, n.line_idx))
            .unwrap_or(usize::MAX)
    };

    // The root binds the top entry (same digest as `root_digest`).
    let top_idx = node_at(geometry.top_level(), 0);
    let top = &proof.nodes[top_idx];
    let mut image = [0u8; CACHELINE_BYTES + 8];
    image[..CACHELINE_BYTES].copy_from_slice(&top.body);
    image[CACHELINE_BYTES..].copy_from_slice(&top.mac.to_le_bytes());
    let computed = fnv1a(&image);
    if computed != published_root {
        return Err(ProofError::RootMismatch { published: published_root, computed });
    }

    // Counter-line MACs, keyed by the parent's decoded counter (top keyed
    // 0), recomputed in one batched SipHash pass.
    let mac_key = mac_key_of(proof.key);
    let mut inputs: Vec<(u64, u64, &[u8; CACHELINE_BYTES])> =
        Vec::with_capacity(proof.nodes.len());
    for node in &proof.nodes {
        let parent_value = if node.level == geometry.top_level() {
            0
        } else {
            let (parent_idx, slot) = geometry.parent_of(node.level + 1, node.line_idx);
            decoded[node_at(node.level + 1, parent_idx)].get(slot)
        };
        let addr = geometry.line_addr(node.level, node.line_idx);
        inputs.push((addr, parent_value, &node.body));
    }
    let mut tags = vec![MacTag(0); inputs.len()];
    mac_key.mac_lines_into(&inputs, &mut tags);
    for (tag, node) in tags.iter().zip(&proof.nodes) {
        if tag.0 != node.mac {
            return Err(ProofError::NodeMacMismatch {
                level: node.level,
                line_idx: node.line_idx,
            });
        }
    }

    // Data MACs, keyed by the level-0 decoded counters.
    let mut inputs: Vec<(u64, u64, &[u8; CACHELINE_BYTES])> =
        Vec::with_capacity(proof.data.len());
    for entry in &proof.data {
        let (line_idx, slot) = geometry.parent_of(0, entry.line);
        let counter = decoded[node_at(0, line_idx)].get(slot);
        inputs.push((entry.line * CACHELINE_BYTES as u64, counter, &entry.ciphertext));
    }
    let mut tags = vec![MacTag(0); inputs.len()];
    mac_key.mac_lines_into(&inputs, &mut tags);
    for (tag, entry) in tags.iter().zip(&proof.data) {
        if tag.0 != entry.mac {
            return Err(ProofError::DataMacMismatch { line: entry.line });
        }
    }

    Ok(ProofStats {
        data_lines: proof.data.len() as u64,
        nodes: proof.nodes.len() as u64,
        mac_computes: (proof.nodes.len() + proof.data.len()) as u64,
        shards: 0,
    })
}

/// Checks a [`ShardedProof`] against a published combined root (the
/// prover's [`ShardedMemory::combined_root`]): the digest vector must fold
/// to the root, and every sub-proof must verify against its own
/// digest-vector entry under its shard's derived key.
///
/// # Errors
///
/// Returns the first [`ProofError`] found; sub-proof failures are wrapped
/// as [`ProofError::Shard`].
pub fn verify_sharded_proof(
    proof: &ShardedProof,
    published_root: u64,
) -> Result<ProofStats, ProofError> {
    let shards = proof.digests.len();
    let plan = ShardPlan::new(proof.memory_bytes, shards)
        .map_err(|_| ProofError::BadShardPlan { shards: shards as u64 })?;
    if proof.subs.is_empty() {
        return Err(ProofError::EmptyLineSet);
    }
    let computed = fold_digests(proof.key, &proof.digests);
    if computed != published_root {
        return Err(ProofError::RootMismatch { published: published_root, computed });
    }
    let mut stats = ProofStats::default();
    for &(shard, ref sub) in &proof.subs {
        if shard >= shards {
            return Err(ProofError::ShardOutOfRange { shard });
        }
        if sub.key != ShardedMemory::derived_key(proof.key, shard) {
            return Err(ProofError::ShardKeyMismatch { shard });
        }
        if sub.memory_bytes != plan.shard_memory_bytes(shard) {
            return Err(ProofError::ShardMemoryMismatch { shard });
        }
        let sub_stats = verify_proof(sub, proof.digests[shard])
            .map_err(|e| ProofError::Shard { shard, source: Box::new(e) })?;
        stats.data_lines += sub_stats.data_lines;
        stats.nodes += sub_stats.nodes;
        stats.mac_computes += sub_stats.mac_computes;
        stats.shards += 1;
    }
    // Folding the digest chain costs one MAC per 8 digests.
    stats.mac_computes += proof.digests.len().div_ceil(8) as u64;
    Ok(stats)
}

/// Verifies a proof of either kind against its published root.
///
/// # Errors
///
/// See [`verify_proof`] and [`verify_sharded_proof`].
pub fn verify_any_proof(proof: &AnyProof, published_root: u64) -> Result<ProofStats, ProofError> {
    match proof {
        AnyProof::Serial(p) => verify_proof(p, published_root),
        AnyProof::Sharded(p) => verify_sharded_proof(p, published_root),
    }
}

// ---------------------------------------------------------------------
// Authenticated reads.
// ---------------------------------------------------------------------

impl Proof {
    /// The proven data line indices (ascending).
    #[must_use]
    pub fn lines(&self) -> Vec<u64> {
        self.data.iter().map(|d| d.line).collect()
    }

    /// Number of counter nodes carried.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The declared tree configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Verifies against `published_root` and, on success, decrypts the
    /// proven lines — the authenticated read: `(line, plaintext)` pairs in
    /// ascending line order. (The proof embeds the construction key by the
    /// model concession the snapshot formats share, so a verifier entitled
    /// to the proof can also read it.)
    ///
    /// # Errors
    ///
    /// Any [`verify_proof`] failure; nothing is decrypted on failure.
    pub fn verify_and_read(
        &self,
        published_root: u64,
    ) -> Result<Vec<(u64, [u8; CACHELINE_BYTES])>, ProofError> {
        verify_proof(self, published_root)?;
        let geometry = geometry_of(&self.config, self.memory_bytes)?;
        let cipher = CtrModeCipher::new(self.key);
        // Gather every line's (addr, counter) pair and ciphertext first,
        // then decrypt the whole sweep through the bulk counter-mode path
        // (four lines per AES call on the `vaes` backend).
        let mut pairs = Vec::with_capacity(self.data.len());
        let mut ciphertexts = Vec::with_capacity(self.data.len());
        for entry in &self.data {
            let (line_idx, slot) = geometry.parent_of(0, entry.line);
            let node = self
                .nodes
                .iter()
                .find(|n| n.level == 0 && n.line_idx == line_idx)
                .ok_or(ProofError::MissingNode { level: 0, line_idx })?;
            let counter = decode_node_line(&self.config, node)?.get(slot);
            pairs.push((entry.line * CACHELINE_BYTES as u64, counter));
            ciphertexts.push(entry.ciphertext);
        }
        let mut plaintexts = vec![[0u8; CACHELINE_BYTES]; pairs.len()];
        cipher.decrypt_lines_into(&pairs, &ciphertexts, &mut plaintexts);
        Ok(self
            .data
            .iter()
            .zip(plaintexts)
            .map(|(entry, plaintext)| (entry.line, plaintext))
            .collect())
    }
}

impl ShardedProof {
    /// The proven data line indices, in global coordinates (ascending).
    #[must_use]
    pub fn lines(&self) -> Vec<u64> {
        let Ok(plan) = ShardPlan::new(self.memory_bytes, self.digests.len().max(1)) else {
            return Vec::new();
        };
        let mut lines: Vec<u64> = self
            .subs
            .iter()
            .flat_map(|(shard, sub)| {
                let shard = *shard;
                sub.lines().into_iter().map(move |l| plan.global_line(shard, l))
            })
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Total counter nodes carried across sub-proofs.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.subs.iter().map(|(_, sub)| sub.node_count()).sum()
    }

    /// Shards in the declared partition.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.digests.len()
    }

    /// Verifies against the published combined root and decrypts the
    /// proven lines in global coordinates (see [`Proof::verify_and_read`]).
    ///
    /// # Errors
    ///
    /// Any [`verify_sharded_proof`] failure.
    pub fn verify_and_read(
        &self,
        published_root: u64,
    ) -> Result<Vec<(u64, [u8; CACHELINE_BYTES])>, ProofError> {
        verify_sharded_proof(self, published_root)?;
        let plan = ShardPlan::new(self.memory_bytes, self.digests.len())
            .map_err(|_| ProofError::BadShardPlan { shards: self.digests.len() as u64 })?;
        let mut out = Vec::new();
        for &(shard, ref sub) in &self.subs {
            for (local, plaintext) in sub.verify_and_read(self.digests[shard])? {
                out.push((plan.global_line(shard, local), plaintext));
            }
        }
        out.sort_unstable_by_key(|&(line, _)| line);
        Ok(out)
    }
}

impl AnyProof {
    /// The proven data line indices (global coordinates, ascending).
    #[must_use]
    pub fn lines(&self) -> Vec<u64> {
        match self {
            AnyProof::Serial(p) => p.lines(),
            AnyProof::Sharded(p) => p.lines(),
        }
    }

    /// Total counter nodes carried.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            AnyProof::Serial(p) => p.node_count(),
            AnyProof::Sharded(p) => p.node_count(),
        }
    }

    /// Verifies and decrypts the proven lines (see
    /// [`Proof::verify_and_read`]).
    ///
    /// # Errors
    ///
    /// Any verification failure for the underlying kind.
    pub fn verify_and_read(
        &self,
        published_root: u64,
    ) -> Result<Vec<(u64, [u8; CACHELINE_BYTES])>, ProofError> {
        match self {
            AnyProof::Serial(p) => p.verify_and_read(published_root),
            AnyProof::Sharded(p) => p.verify_and_read(published_root),
        }
    }
}

// ---------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------

fn encode_serial_body(proof: &Proof, w: &mut ByteWriter) {
    write_config(w, &proof.config);
    write_varint(w, proof.memory_bytes);
    w.bytes(&proof.key);
    write_varint(w, proof.data.len() as u64);
    let mut prev = 0u64;
    for (i, entry) in proof.data.iter().enumerate() {
        // Delta coding over the strictly ascending line indices.
        let delta = if i == 0 { entry.line } else { entry.line - prev };
        write_varint(w, delta);
        w.bytes(&entry.ciphertext);
        w.u64(entry.mac);
        prev = entry.line;
    }
    write_varint(w, proof.nodes.len() as u64);
    for node in &proof.nodes {
        write_varint(w, node.level as u64);
        write_varint(w, node.line_idx);
        w.bytes(&node.body);
        w.u64(node.mac);
    }
}

impl Proof {
    /// Encodes the proof to its canonical byte form (magic, version, body,
    /// trailing FNV checksum).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u8(VERSION);
        w.u8(KIND_SERIAL);
        encode_serial_body(self, &mut w);
        let mut out = w.into_bytes();
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a serial proof (strict: checksum, canonical varints, exact
    /// consumption, strictly ascending entries).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProofError`] on any framing violation.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProofError> {
        match decode_proof(bytes)? {
            AnyProof::Serial(p) => Ok(p),
            AnyProof::Sharded(_) => Err(ProofError::UnknownKind { kind: KIND_SHARDED }),
        }
    }
}

impl ShardedProof {
    /// Encodes the composed proof (each sub-proof embedded in its own
    /// full framing, length-prefixed).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u8(VERSION);
        w.u8(KIND_SHARDED);
        w.bytes(&self.key);
        write_varint(&mut w, self.memory_bytes);
        write_varint(&mut w, self.digests.len() as u64);
        for &digest in &self.digests {
            w.u64(digest);
        }
        write_varint(&mut w, self.subs.len() as u64);
        for &(shard, ref sub) in &self.subs {
            write_varint(&mut w, shard as u64);
            let encoded = sub.encode();
            write_varint(&mut w, encoded.len() as u64);
            w.bytes(&encoded);
        }
        let mut out = w.into_bytes();
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a sharded proof (strict; see [`Proof::decode`]).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProofError`] on any framing violation.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProofError> {
        match decode_proof(bytes)? {
            AnyProof::Sharded(p) => Ok(p),
            AnyProof::Serial(_) => Err(ProofError::UnknownKind { kind: KIND_SERIAL }),
        }
    }
}

impl AnyProof {
    /// Encodes the proof in its kind's canonical byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AnyProof::Serial(p) => p.encode(),
            AnyProof::Sharded(p) => p.encode(),
        }
    }
}

/// Splits off and validates the trailing checksum, returning the body.
fn checked_body(bytes: &[u8]) -> Result<&[u8], ProofError> {
    if bytes.len() < MAGIC.len() + 2 + 8 {
        return Err(ProofError::Truncated { offset: bytes.len() });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().map_err(|_| ProofError::ChecksumMismatch)?);
    if fnv1a(body) != stored {
        return Err(ProofError::ChecksumMismatch);
    }
    Ok(body)
}

fn truncated(t: crate::persist::codec::Truncated) -> ProofError {
    ProofError::Truncated { offset: t.offset }
}

fn decode_serial_body(r: &mut ByteReader<'_>) -> Result<Proof, ProofError> {
    let config_offset = r.offset();
    let config = read_config(r).map_err(|_| ProofError::BadConfig { offset: config_offset })?;
    let memory_bytes = read_varint(r)?;
    // Geometry is validated here so entry bounds below are meaningful.
    let geometry = geometry_of(&config, memory_bytes)?;
    let key: [u8; 16] = r
        .bytes(16)
        .map_err(truncated)?
        .try_into()
        .map_err(|_| ProofError::Truncated { offset: r.offset() })?;

    let data_count = read_varint(r)?;
    if data_count > geometry.data_lines() {
        return Err(ProofError::LineOutOfRange { line: data_count });
    }
    let mut data = Vec::new();
    let mut prev = 0u64;
    for i in 0..data_count {
        let entry_offset = r.offset();
        let delta = read_varint(r)?;
        let line = if i == 0 {
            delta
        } else {
            if delta == 0 {
                return Err(ProofError::UnsortedEntries { offset: entry_offset });
            }
            prev.checked_add(delta)
                .ok_or(ProofError::UnsortedEntries { offset: entry_offset })?
        };
        let ciphertext = r.line().map_err(truncated)?;
        let mac = r.u64().map_err(truncated)?;
        data.push(ProofData { line, ciphertext, mac });
        prev = line;
    }

    let node_count = read_varint(r)?;
    let mut nodes = Vec::new();
    let mut prev_key: Option<(usize, u64)> = None;
    for _ in 0..node_count {
        let entry_offset = r.offset();
        let level = read_varint(r)?;
        if level > geometry.top_level() as u64 {
            return Err(ProofError::NodeOutOfRange { level: level as usize, line_idx: 0 });
        }
        let level = level as usize;
        let line_idx = read_varint(r)?;
        if prev_key.is_some_and(|prev| prev >= (level, line_idx)) {
            return Err(ProofError::UnsortedEntries { offset: entry_offset });
        }
        prev_key = Some((level, line_idx));
        let body = r.line().map_err(truncated)?;
        let mac = r.u64().map_err(truncated)?;
        nodes.push(ProofNode { level, line_idx, body, mac });
    }
    Ok(Proof { config, memory_bytes, key, data, nodes })
}

/// Decodes a proof of either kind, strictly: the trailing checksum must
/// match, every varint must be canonical, entries must be strictly
/// ascending, and every byte must be consumed — the no-slack-byte
/// property the codec tests sweep.
///
/// # Errors
///
/// Returns a typed [`ProofError`] on any framing violation.
pub fn decode_proof(bytes: &[u8]) -> Result<AnyProof, ProofError> {
    let body = checked_body(bytes)?;
    let mut r = ByteReader::new(body);
    let magic = r.bytes(4).map_err(truncated)?;
    if magic != MAGIC {
        return Err(ProofError::BadMagic);
    }
    let version = r.u8().map_err(truncated)?;
    if version != VERSION {
        return Err(ProofError::UnsupportedVersion { version });
    }
    let kind = r.u8().map_err(truncated)?;
    let proof = match kind {
        KIND_SERIAL => AnyProof::Serial(decode_serial_body(&mut r)?),
        KIND_SHARDED => {
            let key: [u8; 16] = r
                .bytes(16)
                .map_err(truncated)?
                .try_into()
                .map_err(|_| ProofError::Truncated { offset: r.offset() })?;
            let memory_bytes = read_varint(&mut r)?;
            let shard_count = read_varint(&mut r)?;
            // Pre-validate the partition so the digest read below is
            // bounded by a plausible shard count.
            ShardPlan::new(memory_bytes, shard_count.min(usize::MAX as u64) as usize)
                .map_err(|_| ProofError::BadShardPlan { shards: shard_count })?;
            let mut digests = Vec::new();
            for _ in 0..shard_count {
                digests.push(r.u64().map_err(truncated)?);
            }
            let sub_count = read_varint(&mut r)?;
            if sub_count > shard_count {
                return Err(ProofError::BadShardPlan { shards: shard_count });
            }
            let mut subs = Vec::new();
            let mut prev_shard: Option<u64> = None;
            for _ in 0..sub_count {
                let entry_offset = r.offset();
                let shard = read_varint(&mut r)?;
                if shard >= shard_count {
                    return Err(ProofError::ShardOutOfRange { shard: shard as usize });
                }
                if prev_shard.is_some_and(|prev| prev >= shard) {
                    return Err(ProofError::UnsortedEntries { offset: entry_offset });
                }
                prev_shard = Some(shard);
                let len = read_varint(&mut r)? as usize;
                let embedded = r.bytes(len).map_err(truncated)?;
                let sub = Proof::decode(embedded)?;
                subs.push((shard as usize, sub));
            }
            AnyProof::Sharded(ShardedProof { key, memory_bytes, digests, subs })
        }
        other => return Err(ProofError::UnknownKind { kind: other }),
    };
    if !r.is_exhausted() {
        return Err(ProofError::TrailingBytes { len: r.remaining() });
    }
    Ok(proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;

    fn written_memory(config: TreeConfig, memory_kib: u64, lines: u64) -> SecureMemory {
        let mut mem = SecureMemory::new(config, memory_kib * 1024, [7u8; 16]);
        for line in 0..lines {
            mem.write(line * 3 % mem.geometry().data_lines(), &[line as u8; 64]);
        }
        mem
    }

    #[test]
    fn prove_then_verify_round_trip() {
        for config in [TreeConfig::sc64(), TreeConfig::morphtree(), TreeConfig::vault()] {
            let mem = written_memory(config, 256, 64);
            let lines = [0u64, 3, 9, 30];
            let proof = mem.prove(&lines).unwrap();
            let stats = verify_proof(&proof, mem.root_digest()).unwrap();
            assert_eq!(stats.data_lines, 4);
            assert!(stats.nodes >= 1);
            let decoded = decode_proof(&proof.encode()).unwrap();
            assert_eq!(decoded, AnyProof::Serial(proof));
        }
    }

    #[test]
    fn encode_decode_is_byte_identical() {
        let mem = written_memory(TreeConfig::morphtree(), 256, 32);
        let proof = mem.prove(&[3, 15, 51]).unwrap();
        let bytes = proof.encode();
        let decoded = Proof::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn duplicate_and_unsorted_requests_canonicalize() {
        let mem = written_memory(TreeConfig::sc64(), 256, 32);
        let a = mem.prove(&[9, 3, 9, 6, 3]).unwrap();
        let b = mem.prove(&[3, 6, 9]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.lines(), vec![3, 6, 9]);
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let mem = written_memory(TreeConfig::sc64(), 256, 8);
        assert_eq!(mem.prove(&[]), Err(ProofError::EmptyLineSet));
        let oob = mem.geometry().data_lines();
        assert_eq!(mem.prove(&[oob]), Err(ProofError::LineOutOfRange { line: oob }));
        // Line 1000 < data_lines for 256 KiB (4096 lines) but never written
        // by the pattern above (writes hit multiples of 3 below 24).
        let never = 1001;
        assert_eq!(mem.prove(&[never]), Err(ProofError::NeverWritten { line: never }));
    }

    #[test]
    fn verify_rejects_wrong_root() {
        let mem = written_memory(TreeConfig::morphtree(), 256, 16);
        let proof = mem.prove(&[6]).unwrap();
        let root = mem.root_digest();
        let err = verify_proof(&proof, root ^ 1).unwrap_err();
        assert!(matches!(err, ProofError::RootMismatch { .. }), "{err}");
    }

    #[test]
    fn verify_rejects_stale_proof_after_write() {
        let mut mem = written_memory(TreeConfig::sc64(), 256, 16);
        let proof = mem.prove(&[12]).unwrap();
        mem.write(12, &[0xff; 64]);
        // Replay: the old proof no longer matches the advanced root.
        let err = verify_proof(&proof, mem.root_digest()).unwrap_err();
        assert!(matches!(err, ProofError::RootMismatch { .. }), "{err}");
    }

    #[test]
    fn verify_rejects_surplus_and_missing_nodes() {
        let mem = written_memory(TreeConfig::sc64(), 256, 64);
        let mut proof = mem.prove(&[0]).unwrap();
        let extra = mem.prove(&[189]).unwrap();
        // Graft a node the line set does not need.
        let surplus = extra
            .nodes
            .iter()
            .find(|n| !proof.nodes.iter().any(|m| (m.level, m.line_idx) == (n.level, n.line_idx)))
            .cloned()
            .unwrap();
        proof.nodes.push(surplus.clone());
        proof.nodes.sort_by_key(|n| (n.level, n.line_idx));
        assert_eq!(
            verify_proof(&proof, mem.root_digest()),
            Err(ProofError::UnexpectedNode { level: surplus.level, line_idx: surplus.line_idx })
        );
        let mut proof = mem.prove(&[0]).unwrap();
        let dropped = proof.nodes.remove(0);
        assert_eq!(
            verify_proof(&proof, mem.root_digest()),
            Err(ProofError::MissingNode { level: dropped.level, line_idx: dropped.line_idx })
        );
    }

    #[test]
    fn authenticated_read_returns_plaintext() {
        let mut mem = SecureMemory::new(TreeConfig::morphtree(), 1 << 20, [9u8; 16]);
        mem.write(5, &[0xab; 64]);
        mem.write(77, &[0xcd; 64]);
        let proof = mem.prove(&[77, 5]).unwrap();
        let reads = proof.verify_and_read(mem.root_digest()).unwrap();
        assert_eq!(reads, vec![(5, [0xab; 64]), (77, [0xcd; 64])]);
    }

    #[test]
    fn sharded_prove_composes_and_verifies() {
        let mut mem =
            ShardedMemory::new(TreeConfig::morphtree(), 256 * 1024, [3u8; 16], 4).unwrap();
        let last = mem.plan().data_lines() - 1;
        for line in [0, 7, 1000, last] {
            mem.write(line, &[line as u8; 64]);
        }
        let root = mem.combined_root();
        let proof = mem.prove(&[0, 7, 1000, last]).unwrap();
        let stats = verify_sharded_proof(&proof, root).unwrap();
        assert_eq!(stats.data_lines, 4);
        assert!(stats.shards >= 2, "lines span shards");
        assert_eq!(proof.lines(), vec![0, 7, 1000, last]);
        let reads = proof.verify_and_read(root).unwrap();
        assert_eq!(reads[0], (0, [0u8; 64]));
        assert_eq!(reads[3], (last, [last as u8; 64]));
        let decoded = decode_proof(&proof.encode()).unwrap();
        assert_eq!(decoded, AnyProof::Sharded(proof));
    }

    #[test]
    fn sharded_proof_rejects_forged_digest_vector() {
        let mut mem = ShardedMemory::new(TreeConfig::sc64(), 64 * 1024, [3u8; 16], 2).unwrap();
        mem.write(0, &[1; 64]);
        let root = mem.combined_root();
        let mut proof = mem.prove(&[0]).unwrap();
        // Tamper the digest of the *unproven* shard: the fold must catch it.
        proof.digests[1] ^= 1;
        let err = verify_sharded_proof(&proof, root).unwrap_err();
        assert!(matches!(err, ProofError::RootMismatch { .. }), "{err}");
    }

    #[test]
    fn higher_arity_yields_smaller_proofs() {
        // The paper-unevaluated headline: 128-ary morphable trees need
        // fewer levels than the SC-64 baseline, so proofs are shorter.
        let lines = [0u64, 12, 222, 378];
        let sc64 = written_memory(TreeConfig::sc64(), 1024, 128);
        let morph = written_memory(TreeConfig::morphtree(), 1024, 128);
        let sc64_bytes = sc64.prove(&lines).unwrap().encode().len();
        let morph_bytes = morph.prove(&lines).unwrap().encode().len();
        assert!(
            morph_bytes < sc64_bytes,
            "morph proof {morph_bytes} B should be smaller than sc64 {sc64_bytes} B"
        );
    }

    #[test]
    fn varints_are_canonical() {
        let mut w = ByteWriter::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            write_varint(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(read_varint(&mut r).unwrap(), v);
        }
        assert!(r.is_exhausted());
        // Overlong encoding of 1 must be rejected.
        let overlong = [0x81, 0x00];
        let mut r = ByteReader::new(&overlong);
        assert_eq!(
            read_varint(&mut r),
            Err(ProofError::NonCanonicalVarint { offset: 0 })
        );
        // An 11-byte varint overflows 64 bits.
        let wide = [0xff; 11];
        let mut r = ByteReader::new(&wide);
        assert_eq!(
            read_varint(&mut r),
            Err(ProofError::NonCanonicalVarint { offset: 0 })
        );
    }

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProofError>();
        let e = ProofError::RootMismatch { published: 1, computed: 2 };
        assert!(e.to_string().contains("root mismatch"), "{e}");
        let e = ProofError::Shard {
            shard: 3,
            source: Box::new(ProofError::ChecksumMismatch),
        };
        assert!(e.to_string().contains("shard 3"), "{e}");
        assert!(Error::source(&e).is_some());
    }
}
