//! Crash-fault injection over the persistence WAL (the recovery contract
//! of `core::persist`): a writer that dies at *any* byte offset of the
//! log — and an adversary that additionally corrupts the surviving
//! bytes — must leave the system recoverable to a verifying
//! committed-transaction prefix or produce a typed [`RecoveryError`].
//! Never a panic, never silent divergence from the committed history.

use proptest::prelude::*;

use morphtree_core::concurrent::ShardedMemory;
use morphtree_core::functional::SecureMemory;
use morphtree_core::persist::{
    recover, recover_sharded, replay, save_memory, save_sharded, PersistentMemory, RecoveryError,
};
use morphtree_core::tree::TreeConfig;

const MEM: u64 = 1 << 20;
const WORKING_LINES: u64 = 48;
const JOURNALED_WRITES: usize = 6;

/// A scripted crash scenario: a populated memory is snapshotted, then
/// journals a fixed burst of writes into a WAL. Returns the snapshot, the
/// byte-exact state after each committed prefix of the burst
/// (`states[k]` = snapshot after `k` writes), and the full WAL.
fn scripted(config: TreeConfig) -> (Vec<u8>, Vec<Vec<u8>>, Vec<u8>) {
    let mut base = SecureMemory::new(config, MEM, [0x77; 16]);
    for line in 0..WORKING_LINES {
        base.write(line, &[line as u8 ^ 0x5a; 64]);
    }
    let snapshot = save_memory(&base);
    // The tracker replays the same writes outside the journal, giving an
    // independent oracle for every committed prefix.
    let mut tracker = base.clone();
    let mut states = vec![save_memory(&tracker)];
    let mut journaled = PersistentMemory::from_memory(base);
    for i in 0..JOURNALED_WRITES {
        let line = (i as u64 * 13 + 5) % WORKING_LINES;
        let payload = [(i as u8).wrapping_mul(31) ^ 0x42; 64];
        journaled.write(line, &payload);
        tracker.write(line, &payload);
        states.push(save_memory(&tracker));
    }
    (snapshot, states, journaled.wal_bytes().to_vec())
}

/// Exhaustive kill-point sweep: an honest torn log (every byte prefix of
/// a valid WAL) always recovers, and the recovered state is byte-exact
/// the committed-transaction prefix — on both a split-counter and a
/// morphable-counter tree.
#[test]
fn every_kill_point_recovers_the_committed_prefix() {
    for config in [TreeConfig::sc64(), TreeConfig::morphtree()] {
        let name = config.name().to_owned();
        let (snapshot, states, wal) = scripted(config);
        assert!(!wal.is_empty(), "{name}: scenario produced no WAL traffic");
        for cut in 0..=wal.len() {
            let prefix = &wal[..cut];
            let committed = replay(prefix)
                .unwrap_or_else(|e| panic!("{name}: honest prefix rejected at cut {cut}: {e}"))
                .len();
            let recovered = recover(&snapshot, prefix)
                .unwrap_or_else(|e| panic!("{name}: recovery failed at cut {cut}: {e}"));
            assert_eq!(
                save_memory(&recovered),
                states[committed],
                "{name}: cut {cut} diverged from the {committed}-write prefix"
            );
        }
    }
}

/// A populated sharded memory for the sharded-snapshot guards.
fn sharded_scenario(shards: usize) -> ShardedMemory {
    let mut memory =
        ShardedMemory::new(TreeConfig::morphtree(), MEM, [0x77; 16], shards).unwrap();
    let lines = memory.plan().data_lines();
    for i in 0..WORKING_LINES {
        memory.write(i * 257 % lines, &[i as u8 ^ 0x5a; 64]);
    }
    memory
}

/// Sharded snapshots obey the same contract as serial ones: a clean
/// container recovers to a byte-identical state (same combined root, same
/// data), and serialization is a pure function of state.
#[test]
fn sharded_snapshot_recovers_byte_identical_state() {
    for shards in [1usize, 4] {
        let mut memory = sharded_scenario(shards);
        let root = memory.combined_root();
        let snap = save_sharded(&memory);
        let mut restored = recover_sharded(&snap).unwrap();
        assert_eq!(restored.combined_root(), root, "{shards} shards");
        assert_eq!(save_sharded(&restored), snap, "{shards} shards");
        restored.verify_all().unwrap();
    }
}

/// Every truncation of a sharded container is a typed refusal — recovery
/// never panics and never hands back a partial blend of shards.
#[test]
fn every_sharded_truncation_refuses_typed() {
    let memory = sharded_scenario(4);
    let snap = save_sharded(&memory);
    for cut in 0..snap.len() {
        match recover_sharded(&snap[..cut]) {
            Ok(_) => panic!("cut {cut}: truncated container must not recover"),
            Err(err) => {
                // Rendering the diagnosis must not panic either.
                let _ = err.to_string();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-byte corruption anywhere in a sharded container either
    /// leaves a state byte-identical to the honest one (the flip landed in
    /// dead framing bytes — which the checksummed format makes impossible
    /// — or was self-cancelling) or is refused with a typed error. The
    /// forbidden outcome is a recovered state that differs from the
    /// original: a silent blend.
    #[test]
    fn corrupted_sharded_containers_never_blend_silently(
        flip_sel in any::<u64>(),
        bit in 0u32..8,
    ) {
        let memory = sharded_scenario(4);
        let honest = save_sharded(&memory);
        let mut corrupt = honest.clone();
        let flip = (flip_sel as usize) % corrupt.len();
        corrupt[flip] ^= 1u8 << bit;
        match recover_sharded(&corrupt) {
            Ok(recovered) => {
                prop_assert_eq!(
                    save_sharded(&recovered),
                    honest,
                    "flip at {} (bit {}): recovered a divergent state",
                    flip,
                    bit
                );
            }
            Err(err) => {
                let _ = err.to_string(); // diagnosis must render, not panic
            }
        }
    }

    /// Crash plus corruption: flip one bit anywhere in the log, then kill
    /// the writer at a random offset. Recovery must either restore a
    /// state byte-identical to *some* committed prefix of the honest
    /// history (the flip landed in a discarded tail) or reject the log
    /// with the typed corruption error — silently absorbing the flip
    /// into a divergent state is the one forbidden outcome.
    #[test]
    fn corrupted_torn_logs_never_diverge_silently(
        cut_sel in any::<u64>(),
        flip_sel in any::<u64>(),
        bit in 0u32..8,
    ) {
        let (snapshot, states, wal) = scripted(TreeConfig::morphtree());
        let mut torn = wal.clone();
        let flip = (flip_sel as usize) % torn.len();
        torn[flip] ^= 1u8 << bit;
        let cut = (cut_sel as usize) % (torn.len() + 1);
        match recover(&snapshot, &torn[..cut]) {
            Ok(recovered) => {
                let bytes = save_memory(&recovered);
                prop_assert!(
                    states.contains(&bytes),
                    "flip at {} (bit {}), cut {}: recovered state matches no committed prefix",
                    flip, bit, cut
                );
            }
            Err(err) => {
                // The flip survived into a complete record: the only
                // legal rejection is the typed corruption error, and its
                // rendering must not panic either.
                prop_assert!(
                    matches!(err, RecoveryError::CorruptWal { .. }),
                    "flip at {} (bit {}), cut {}: unexpected error {}",
                    flip, bit, cut, err
                );
            }
        }
    }
}
