//! Crash-fault injection over the persistence WAL (the recovery contract
//! of `core::persist`): a writer that dies at *any* byte offset of the
//! log — and an adversary that additionally corrupts the surviving
//! bytes — must leave the system recoverable to a verifying
//! committed-transaction prefix or produce a typed [`RecoveryError`].
//! Never a panic, never silent divergence from the committed history.

use proptest::prelude::*;

use morphtree_core::concurrent::{Op, ShardedMemory};
use morphtree_core::functional::SecureMemory;
use morphtree_core::persist::{
    recover, recover_sharded, recover_sharded_bounded, replay, save_memory, save_sharded,
    EpochShardedMemory, PersistentMemory, RecoveryError,
};
use morphtree_core::tree::TreeConfig;

const MEM: u64 = 1 << 20;
const WORKING_LINES: u64 = 48;
const JOURNALED_WRITES: usize = 6;

/// A scripted crash scenario: a populated memory is snapshotted, then
/// journals a fixed burst of writes into a WAL. Returns the snapshot, the
/// byte-exact state after each committed prefix of the burst
/// (`states[k]` = snapshot after `k` writes), and the full WAL.
fn scripted(config: TreeConfig) -> (Vec<u8>, Vec<Vec<u8>>, Vec<u8>) {
    let mut base = SecureMemory::new(config, MEM, [0x77; 16]);
    for line in 0..WORKING_LINES {
        base.write(line, &[line as u8 ^ 0x5a; 64]);
    }
    let snapshot = save_memory(&base);
    // The tracker replays the same writes outside the journal, giving an
    // independent oracle for every committed prefix.
    let mut tracker = base.clone();
    let mut states = vec![save_memory(&tracker)];
    let mut journaled = PersistentMemory::from_memory(base);
    for i in 0..JOURNALED_WRITES {
        let line = (i as u64 * 13 + 5) % WORKING_LINES;
        let payload = [(i as u8).wrapping_mul(31) ^ 0x42; 64];
        journaled.write(line, &payload);
        tracker.write(line, &payload);
        states.push(save_memory(&tracker));
    }
    (snapshot, states, journaled.wal_bytes().to_vec())
}

/// Exhaustive kill-point sweep: an honest torn log (every byte prefix of
/// a valid WAL) always recovers, and the recovered state is byte-exact
/// the committed-transaction prefix — on both a split-counter and a
/// morphable-counter tree.
#[test]
fn every_kill_point_recovers_the_committed_prefix() {
    for config in [TreeConfig::sc64(), TreeConfig::morphtree()] {
        let name = config.name().to_owned();
        let (snapshot, states, wal) = scripted(config);
        assert!(!wal.is_empty(), "{name}: scenario produced no WAL traffic");
        for cut in 0..=wal.len() {
            let prefix = &wal[..cut];
            let committed = replay(prefix)
                .unwrap_or_else(|e| panic!("{name}: honest prefix rejected at cut {cut}: {e}"))
                .len();
            let recovered = recover(&snapshot, prefix)
                .unwrap_or_else(|e| panic!("{name}: recovery failed at cut {cut}: {e}"));
            assert_eq!(
                save_memory(&recovered),
                states[committed],
                "{name}: cut {cut} diverged from the {committed}-write prefix"
            );
        }
    }
}

/// A populated sharded memory for the sharded-snapshot guards.
fn sharded_scenario(shards: usize) -> ShardedMemory {
    let mut memory =
        ShardedMemory::new(TreeConfig::morphtree(), MEM, [0x77; 16], shards).unwrap();
    let lines = memory.plan().data_lines();
    for i in 0..WORKING_LINES {
        memory.write(i * 257 % lines, &[i as u8 ^ 0x5a; 64]);
    }
    memory
}

/// Sharded snapshots obey the same contract as serial ones: a clean
/// container recovers to a byte-identical state (same combined root, same
/// data), and serialization is a pure function of state.
#[test]
fn sharded_snapshot_recovers_byte_identical_state() {
    for shards in [1usize, 4] {
        let mut memory = sharded_scenario(shards);
        let root = memory.combined_root();
        let snap = save_sharded(&memory);
        let mut restored = recover_sharded(&snap).unwrap();
        assert_eq!(restored.combined_root(), root, "{shards} shards");
        assert_eq!(save_sharded(&restored), snap, "{shards} shards");
        restored.verify_all().unwrap();
    }
}

/// Every truncation of a sharded container is a typed refusal — recovery
/// never panics and never hands back a partial blend of shards.
#[test]
fn every_sharded_truncation_refuses_typed() {
    let memory = sharded_scenario(4);
    let snap = save_sharded(&memory);
    for cut in 0..snap.len() {
        match recover_sharded(&snap[..cut]) {
            Ok(_) => panic!("cut {cut}: truncated container must not recover"),
            Err(err) => {
                // Rendering the diagnosis must not panic either.
                let _ = err.to_string();
            }
        }
    }
}

/// Shared durable state for the epoch proptest sweep: the sealed MTSH
/// container, the per-shard WALs, and per-shard MTSN snapshots for the
/// serial oracle.
type EpochScenarioState = (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<u8>>);

/// A scripted epoch-sharded crash scenario: two shards driven through a
/// cut (so the WALs hold real seals) plus an open epoch of writes.
/// Returns the live memory; its `sealed_container()`/`wals()` are the
/// durable state every kill point truncates.
fn epoch_scenario() -> EpochShardedMemory {
    // 256 KiB keeps the full-replay oracle (which verifies every line)
    // fast enough for an exhaustive byte sweep.
    let mut memory =
        EpochShardedMemory::new(TreeConfig::morphtree(), 1 << 18, [0x77; 16], 2, 0).unwrap();
    let lines = memory.plan().data_lines();
    // Strided lines land in both shards.
    let write = |i: u64| Op::Write { line: (i * 521 + 7) % lines, data: [i as u8 ^ 0x42; 64] };
    // Epoch 1's history: folded into the sealed container at the cut.
    let ops: Vec<Op> = (0..4).map(write).collect();
    memory.run_batch(&ops, 2);
    memory.cut();
    // The open epoch: present only in the per-shard WALs.
    let ops: Vec<Op> = (4..8).map(write).collect();
    memory.run_batch(&ops, 2);
    memory
}

/// Exhaustive kill-offset sweep over the sharded epoch state: a crash at
/// *any* byte offset of the per-shard WALs (every shard truncated at the
/// same log time, modeling ordered appends) recovers every shard to the
/// exact state the full-replay oracle derives from the same bytes —
/// consistent epoch, no quarantine, no panic, no silent divergence.
#[test]
fn every_sharded_kill_point_recovers_consistently() {
    let memory = epoch_scenario();
    let container = memory.sealed_container();
    let wals = memory.wals();
    let live_epoch = memory.epoch();
    let longest = wals.iter().map(Vec::len).max().unwrap();
    assert!(longest > 0, "scenario produced no WAL traffic");

    // The sealed container, re-expressed as one plain MTSN snapshot per
    // shard: `recover(snapshot, wal)` on these is the pre-epoch
    // full-replay oracle for each shard.
    let sealed = recover_sharded(&container).unwrap();
    let shard_snapshots: Vec<Vec<u8>> =
        (0..wals.len()).map(|s| save_memory(sealed.shard(s))).collect();

    for cut in 0..=longest {
        let torn: Vec<Vec<u8>> =
            wals.iter().map(|w| w[..cut.min(w.len())].to_vec()).collect();
        let rec = recover_sharded_bounded(&container, &torn)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery refused a torn log: {e}"));
        assert_eq!(
            rec.memory.healthy_shards(),
            wals.len(),
            "cut {cut}: a torn tail must never quarantine"
        );
        assert!(
            rec.resolved_epoch <= live_epoch,
            "cut {cut}: resolved epoch {} beyond the live {live_epoch}",
            rec.resolved_epoch
        );
        for (shard, wal) in torn.iter().enumerate() {
            let oracle = recover(&shard_snapshots[shard], wal)
                .unwrap_or_else(|e| panic!("cut {cut}: oracle refused shard {shard}: {e}"));
            assert_eq!(
                save_memory(rec.memory.shard(shard)),
                save_memory(&oracle),
                "cut {cut}: shard {shard} diverged from the full-replay oracle"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-byte corruption anywhere in a sharded container either
    /// leaves a state byte-identical to the honest one (the flip landed in
    /// dead framing bytes — which the checksummed format makes impossible
    /// — or was self-cancelling) or is refused with a typed error. The
    /// forbidden outcome is a recovered state that differs from the
    /// original: a silent blend.
    #[test]
    fn corrupted_sharded_containers_never_blend_silently(
        flip_sel in any::<u64>(),
        bit in 0u32..8,
    ) {
        let memory = sharded_scenario(4);
        let honest = save_sharded(&memory);
        let mut corrupt = honest.clone();
        let flip = (flip_sel as usize) % corrupt.len();
        corrupt[flip] ^= 1u8 << bit;
        match recover_sharded(&corrupt) {
            Ok(recovered) => {
                prop_assert_eq!(
                    save_sharded(&recovered),
                    honest,
                    "flip at {} (bit {}): recovered a divergent state",
                    flip,
                    bit
                );
            }
            Err(err) => {
                let _ = err.to_string(); // diagnosis must render, not panic
            }
        }
    }

    /// Sharded epoch crashes with *independent* per-shard kill offsets
    /// plus one flipped bit: every healthy shard must match the
    /// full-replay oracle on the same bytes, and a shard that refuses
    /// must refuse identically on both paths — quarantine is typed,
    /// divergence is forbidden, panics are forbidden.
    #[test]
    fn sharded_epoch_crashes_never_diverge_silently(
        cut0 in any::<u64>(),
        cut1 in any::<u64>(),
        flip_sel in any::<u64>(),
        bit in 0u32..8,
        flip_shard in 0usize..2,
    ) {
        use std::sync::OnceLock;
        // The scenario is deterministic; build it once for the whole sweep.
        static STATE: OnceLock<EpochScenarioState> = OnceLock::new();
        let (container, wals, snapshots) = STATE.get_or_init(|| {
            let memory = epoch_scenario();
            let container = memory.sealed_container();
            let wals = memory.wals();
            let sealed = recover_sharded(&container).unwrap();
            let snapshots =
                (0..wals.len()).map(|s| save_memory(sealed.shard(s))).collect();
            (container, wals, snapshots)
        });

        let cuts = [cut0 as usize % (wals[0].len() + 1), cut1 as usize % (wals[1].len() + 1)];
        let mut torn: Vec<Vec<u8>> =
            wals.iter().zip(cuts).map(|(w, c)| w[..c].to_vec()).collect();
        if !torn[flip_shard].is_empty() {
            let flip = flip_sel as usize % torn[flip_shard].len();
            torn[flip_shard][flip] ^= 1u8 << bit;
        }

        let rec = recover_sharded_bounded(container, &torn).unwrap();
        for shard_rec in &rec.shards {
            let shard = shard_rec.shard;
            let oracle = recover(&snapshots[shard], &torn[shard]);
            match (&shard_rec.outcome, oracle) {
                (Ok(_), Ok(oracle)) => prop_assert_eq!(
                    save_memory(rec.memory.shard(shard)),
                    save_memory(&oracle),
                    "shard {} (cuts {:?}): bounded and full recovery disagree",
                    shard, cuts
                ),
                (Err(bounded), Err(full)) => {
                    // Both paths refuse; both diagnoses must render.
                    let _ = (bounded.to_string(), full.to_string());
                    prop_assert!(rec.memory.read(0).is_err() || shard != 0);
                }
                (Ok(_), Err(full)) => prop_assert!(
                    false,
                    "shard {} accepted what the oracle refused: {}",
                    shard, full
                ),
                (Err(bounded), Ok(_)) => prop_assert!(
                    false,
                    "shard {} refused what the oracle accepted: {}",
                    shard, bounded
                ),
            }
        }
    }

    /// Crash plus corruption: flip one bit anywhere in the log, then kill
    /// the writer at a random offset. Recovery must either restore a
    /// state byte-identical to *some* committed prefix of the honest
    /// history (the flip landed in a discarded tail) or reject the log
    /// with the typed corruption error — silently absorbing the flip
    /// into a divergent state is the one forbidden outcome.
    #[test]
    fn corrupted_torn_logs_never_diverge_silently(
        cut_sel in any::<u64>(),
        flip_sel in any::<u64>(),
        bit in 0u32..8,
    ) {
        let (snapshot, states, wal) = scripted(TreeConfig::morphtree());
        let mut torn = wal.clone();
        let flip = (flip_sel as usize) % torn.len();
        torn[flip] ^= 1u8 << bit;
        let cut = (cut_sel as usize) % (torn.len() + 1);
        match recover(&snapshot, &torn[..cut]) {
            Ok(recovered) => {
                let bytes = save_memory(&recovered);
                prop_assert!(
                    states.contains(&bytes),
                    "flip at {} (bit {}), cut {}: recovered state matches no committed prefix",
                    flip, bit, cut
                );
            }
            Err(err) => {
                // The flip survived into a complete record: the only
                // legal rejection is the typed corruption error, and its
                // rendering must not panic either.
                prop_assert!(
                    matches!(err, RecoveryError::CorruptWal { .. }),
                    "flip at {} (bit {}), cut {}: unexpected error {}",
                    flip, bit, cut, err
                );
            }
        }
    }
}
