//! Regression pin for read-path write attribution: dirty metadata lines
//! evicted while a *read* pulls in its counter-fetch chain must be charged
//! as memory writes — in [`EngineStats`], in the emitted [`MemAccess`]
//! stream, and identically in both engines.
//!
//! The failure mode this guards against: the fetch-chain insertion loop
//! swallowing `EvictedLine::dirty` (or attributing the writeback to the
//! read side), which would make a read-only measured phase report zero
//! DRAM writes even though dirty counter lines are streaming back to
//! memory. Under the paper's after-warm-up measurement methodology (§VI)
//! that would silently understate write traffic for every workload with a
//! read-heavy measured phase.

use morphtree_core::metadata::{
    AccessCategory, EngineStats, MacMode, MemAccess, MetadataEngine, ReferenceEngine,
};
use morphtree_core::tree::TreeConfig;

const MIB: u64 = 1 << 20;
/// 4 KiB / 8 ways = 8 sets x 8 ways = 64 cache lines: small enough that a
/// couple hundred distinct counter lines guarantee evictions.
const CACHE_BYTES: usize = 4096;

/// Warm-up: dirty ~200 distinct encryption-counter lines (data lines 64
/// apart map to distinct SC-64 counter lines), then clear the stats so the
/// measured phase starts clean with a cache full of dirty lines.
fn warmed_pair() -> (MetadataEngine, ReferenceEngine) {
    let mut engine = MetadataEngine::new(TreeConfig::sc64(), 64 * MIB, CACHE_BYTES, MacMode::Inline);
    let mut reference =
        ReferenceEngine::new(TreeConfig::sc64(), 64 * MIB, CACHE_BYTES, MacMode::Inline);
    let mut sink = Vec::new();
    for i in 0..200 {
        engine.write(i * 64, &mut sink);
        sink.clear();
        reference.write(i * 64, &mut sink);
        sink.clear();
    }
    engine.reset_stats();
    reference.reset_stats();
    (engine, reference)
}

/// Sum of memory writes across every category.
fn total_writes(stats: &EngineStats) -> u64 {
    stats.writes.iter().sum()
}

#[test]
fn read_only_phase_charges_dirty_evictions_as_writes() {
    let (mut engine, mut reference) = warmed_pair();
    let mut engine_stream = Vec::new();
    let mut reference_stream = Vec::new();
    // Read-only measured phase over *fresh* counter lines: each chain fetch
    // inserts clean lines, evicting warm-up-dirty residents.
    for i in 200..400 {
        engine.read(i * 64, &mut engine_stream);
        reference.read(i * 64, &mut reference_stream);
    }

    // The workload issued no data writes...
    assert_eq!(engine.stats().data_writes, 0);
    assert_eq!(engine.stats().writes[0], 0, "no Data-category writes");
    // ...yet dirty counter writebacks must surface as memory writes.
    let writes = total_writes(engine.stats());
    assert!(writes > 0, "read-only phase must report the dirty writebacks");

    // The writebacks appear in the emitted access stream, attributed to
    // metadata categories (never Data) and never marked critical — a
    // writeback does not gate the data return.
    let emitted_writes: Vec<&MemAccess> =
        engine_stream.iter().filter(|a| a.is_write).collect();
    assert_eq!(emitted_writes.len() as u64, writes, "stats must match the stream");
    assert!(emitted_writes.iter().all(|a| {
        matches!(
            a.category,
            AccessCategory::CtrEncr
                | AccessCategory::Ctr1
                | AccessCategory::Ctr2
                | AccessCategory::Ctr3Up
                | AccessCategory::Overflow
        ) && !a.critical
    }));

    // And the optimized engine agrees with the frozen seed oracle, access
    // by access and counter by counter.
    assert_eq!(engine_stream, reference_stream);
    assert_eq!(engine.stats(), reference.stats());
}

#[test]
fn mixed_phase_write_attribution_matches_reference_exactly() {
    // Same pin under an interleaved read/write measured phase, so the
    // read-path and write-path eviction sites are both exercised against
    // the oracle in one stream.
    let (mut engine, mut reference) = warmed_pair();
    let mut engine_stream = Vec::new();
    let mut reference_stream = Vec::new();
    for i in 0..400u64 {
        let line = (i * 67 + 13) % 1000 * 64;
        if i % 3 == 0 {
            engine.write(line, &mut engine_stream);
            reference.write(line, &mut reference_stream);
        } else {
            engine.read(line, &mut engine_stream);
            reference.read(line, &mut reference_stream);
        }
    }
    assert_eq!(engine_stream, reference_stream);
    assert_eq!(engine.stats(), reference.stats());
    assert!(total_writes(engine.stats()) > engine.stats().data_writes);
}
