//! Lockstep oracle for the sharded concurrent engine: every seeded op mix
//! replays through [`ShardedMemory`] *and* a serial [`SecureMemory`]
//! reference, asserting byte-identical data, identical tamper-detection
//! verdicts (translated to global coordinates), and schedule-invariant
//! root state.
//!
//! Two independent equivalences are pinned:
//!
//! 1. **Sharded vs serial** — outcome-by-outcome against the serial
//!    oracle, for every worker count. The sharded engine must never read
//!    different bytes, miss a detection the serial memory makes, or
//!    detect something the serial memory does not.
//! 2. **Schedule invariance** — for a fixed shard count, the final
//!    combined root (and every outcome) is identical across 1/2/4/8
//!    worker threads and across seeded SplitMix64 interleavings of the
//!    per-shard queues. Concurrency must be unobservable in final state.

use proptest::prelude::*;

use morphtree_core::concurrent::{Op, OpOutcome, ShardedMemory, SplitMix64};
use morphtree_core::error::IntegrityError;
use morphtree_core::functional::SecureMemory;
use morphtree_core::tree::TreeConfig;
use morphtree_core::CACHELINE_BYTES;

const MIB: u64 = 1 << 20;
const KEY: [u8; 16] = [0x2b; 16];
const SHARDS: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn payload(tag: u64) -> [u8; CACHELINE_BYTES] {
    let mut data = [0u8; CACHELINE_BYTES];
    for (i, chunk) in data.chunks_mut(8).enumerate() {
        chunk.copy_from_slice(&tag.wrapping_mul(i as u64 + 1).to_le_bytes());
    }
    data
}

/// A seeded op mix: hot-set-skewed reads and writes with occasional
/// ciphertext and MAC tampers, the full vocabulary both engines share.
fn mix(seed: u64, count: usize, lines: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let line = if rng.below(2) == 0 {
                rng.below(64.min(lines))
            } else {
                rng.below(lines)
            };
            match rng.below(100) {
                0..=44 => Op::Write { line, data: payload(rng.next_u64()) },
                45..=84 => Op::Read { line },
                85..=92 => Op::TamperData {
                    line,
                    offset: rng.below(CACHELINE_BYTES as u64) as usize,
                    mask: (rng.next_u64() as u8) | 1,
                },
                _ => Op::TamperMac { line, mask: rng.next_u64() | 1 },
            }
        })
        .collect()
}

/// Replays `ops` through a serial full-tree [`SecureMemory`] — the oracle
/// the sharded engine must agree with, outcome by outcome.
fn serial_outcomes(ops: &[Op], memory_bytes: u64) -> (Vec<OpOutcome>, SecureMemory) {
    let mut memory = SecureMemory::new(TreeConfig::morphtree(), memory_bytes, KEY);
    let outcomes = ops
        .iter()
        .map(|op| match *op {
            Op::Read { line } => match memory.read(line) {
                Ok(data) => OpOutcome::Data(data),
                Err(err) => OpOutcome::Detected(err),
            },
            Op::Write { line, ref data } => {
                memory.write(line, data);
                OpOutcome::Written
            }
            Op::TamperData { line, offset, mask } => match memory.tamper_raw(line, offset, mask)
            {
                Ok(()) => OpOutcome::Tampered,
                Err(err) => OpOutcome::TamperRejected(err),
            },
            Op::TamperMac { line, mask } => match memory.tamper_mac(line, mask) {
                Ok(()) => OpOutcome::Tampered,
                Err(err) => OpOutcome::TamperRejected(err),
            },
        })
        .collect();
    (outcomes, memory)
}

/// Compares one outcome pair, tolerating the one representation
/// difference the sharding architecture allows: a data-plane tamper can
/// surface as `DataMac` in both engines with the same global address, but
/// the *ciphertext* differs (per-shard keys), so `Data` payloads are only
/// comparable as decrypted plaintext — which both variants already carry.
fn assert_outcomes_match(index: usize, sharded: &OpOutcome, serial: &OpOutcome) {
    assert_eq!(sharded, serial, "op {index}: sharded and serial engines disagree");
}

#[test]
fn lockstep_matches_serial_oracle_at_every_thread_count() {
    for mix_seed in [3u64, 17, 99] {
        let memory_bytes = MIB;
        let lines = memory_bytes / CACHELINE_BYTES as u64;
        let ops = mix(mix_seed, 600, lines);
        let (serial, serial_memory) = serial_outcomes(&ops, memory_bytes);

        let mut roots = Vec::new();
        for threads in THREAD_COUNTS {
            let mut sharded =
                ShardedMemory::new(TreeConfig::morphtree(), memory_bytes, KEY, SHARDS).unwrap();
            let outcomes = sharded.run_batch(&ops, threads);
            assert_eq!(outcomes.len(), serial.len());
            for (i, (got, want)) in outcomes.iter().zip(&serial).enumerate() {
                assert_outcomes_match(i, got, want);
            }
            // Full readback sweep: every line of the address space reads
            // back identically (bytes or verdict) after the mix.
            for line in 0..lines {
                assert_eq!(
                    sharded.read(line),
                    serial_memory.read(line),
                    "mix {mix_seed}, {threads} threads: readback diverged at line {line}"
                );
            }
            roots.push(sharded.combined_root());
        }
        // Identical final root across every worker count.
        assert!(
            roots.windows(2).all(|w| w[0] == w[1]),
            "mix {mix_seed}: combined root varies with thread count: {roots:?}"
        );
    }
}

/// Satellite: the lockstep equivalence re-run with the crypto backend
/// forced to the scalar reference, keeping the oracle honest on AES-NI
/// hosts — if the hardware path ever diverged from the specification,
/// auto-selection would make both sides of the other lockstep tests use
/// it and the divergence could cancel out. Forcing scalar on one side of
/// the fleet breaks that symmetry. (The override is process-global but
/// behavior-neutral by construction: every backend is the same
/// permutation, pinned by the crypto crate's KATs and proptests, so
/// concurrently running tests only change speed.)
#[test]
fn lockstep_holds_with_backend_forced_to_scalar() {
    morphtree_crypto::aes::force_backend(Some(morphtree_crypto::AesBackend::Scalar));
    let lines = MIB / CACHELINE_BYTES as u64;
    let ops = mix(7, 400, lines);
    let (serial, serial_memory) = serial_outcomes(&ops, MIB);
    assert_eq!(
        serial_memory.cipher_backend(),
        morphtree_crypto::AesBackend::Scalar,
        "the forced backend must reach the functional memory"
    );
    let mut sharded = ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, SHARDS).unwrap();
    let outcomes = sharded.run_batch(&ops, 4);
    for (i, (got, want)) in outcomes.iter().zip(&serial).enumerate() {
        assert_outcomes_match(i, got, want);
    }
    for line in 0..lines {
        assert_eq!(sharded.read(line), serial_memory.read(line), "line {line}");
    }
    // Bulk verification agrees too: the mix leaves tampered lines
    // behind, and both planes' batched passes must converge on the same
    // verdict (same first corrupted line, global coordinates).
    let all_lines: Vec<u64> = (0..lines).collect();
    assert_eq!(
        sharded.verify_lines(&all_lines),
        serial_memory.verify_lines(&all_lines),
        "bulk verification verdicts diverged"
    );
    morphtree_crypto::aes::force_backend(None);
}

/// Satellite: the cross-line read batch loop in lockstep. A read-heavy
/// mix produces long same-shard read runs, which `run_batch` serves
/// through bulk multi-line verify+decrypt — the outcomes (including
/// detections against lines tampered earlier in the same batch) must
/// still match the per-op serial oracle at every worker count, and the
/// sharded bulk `verify_and_read` must return exactly the bytes the
/// per-line reads do.
#[test]
fn read_batch_loop_stays_in_lockstep_with_the_serial_oracle() {
    let lines = MIB / CACHELINE_BYTES as u64;
    // Seed writes, one tamper, then a long all-read tail: the tail forms
    // maximal read runs per shard, and the tampered line forces the bulk
    // path through its per-line fallback in exactly one of them.
    let mut ops: Vec<Op> =
        (0..96).map(|i| Op::Write { line: (i * 53) % lines, data: payload(i) }).collect();
    ops.push(Op::TamperData { line: 53 % lines, offset: 9, mask: 0x10 });
    ops.extend((0..300).map(|i| Op::Read { line: (i * 29) % lines }));
    let (serial, serial_memory) = serial_outcomes(&ops, MIB);

    for threads in THREAD_COUNTS {
        let mut sharded = ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, SHARDS).unwrap();
        let outcomes = sharded.run_batch(&ops, threads);
        for (i, (got, want)) in outcomes.iter().zip(&serial).enumerate() {
            assert_outcomes_match(i, got, want);
        }
        // Bulk authenticated read across shards: same verdict as the
        // serial per-line sweep (the tampered line fails both), and on
        // an untampered line set, byte-identical plaintexts in input
        // order with duplicates preserved.
        let all_lines: Vec<u64> = (0..lines).collect();
        assert_eq!(
            sharded.verify_and_read(&all_lines).err().map(|e| format!("{e}")),
            serial_memory.verify_and_read(&all_lines).err().map(|e| format!("{e}")),
            "{threads} threads: bulk verdicts diverged"
        );
        let clean: Vec<u64> = vec![1, 7, 1, 106, 7, 212];
        let bulk = sharded.verify_and_read(&clean).unwrap();
        for (i, &line) in clean.iter().enumerate() {
            assert_eq!(
                bulk[i],
                sharded.read(line).unwrap(),
                "{threads} threads: bulk read diverged at line {line}"
            );
        }
    }
}

#[test]
fn seeded_interleavings_are_schedule_invariant() {
    let lines = MIB / CACHELINE_BYTES as u64;
    let ops = mix(42, 500, lines);
    let (serial, _) = serial_outcomes(&ops, MIB);

    let mut reference_root = None;
    for schedule_seed in 0..12u64 {
        let mut sharded = ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, SHARDS).unwrap();
        let outcomes = sharded.run_interleaved(&ops, schedule_seed);
        for (i, (got, want)) in outcomes.iter().zip(&serial).enumerate() {
            assert_outcomes_match(i, got, want);
        }
        let root = sharded.combined_root();
        match reference_root {
            None => reference_root = Some(root),
            Some(expected) => {
                assert_eq!(root, expected, "schedule seed {schedule_seed} moved the root")
            }
        }
    }
}

/// The mid-run byte-flip guarantee: a tamper injected between two batch
/// halves surfaces as a detection on *every* schedule and thread count —
/// no interleaving can lose a corruption.
#[test]
fn mid_run_byte_flip_is_detected_on_every_schedule() {
    let lines = MIB / CACHELINE_BYTES as u64;
    let victim = lines / 2 + 3;
    let first: Vec<Op> =
        (0..120).map(|i| Op::Write { line: (i * 37) % lines, data: payload(i) }).collect();
    // The victim is written by the first half.
    let first = {
        let mut v = first;
        v.push(Op::Write { line: victim, data: payload(0xdead) });
        v
    };
    let second: Vec<Op> = std::iter::once(Op::Read { line: victim })
        .chain((0..60).map(|i| Op::Read { line: (i * 37) % lines }))
        .collect();

    for threads in THREAD_COUNTS {
        for schedule_seed in 0..6u64 {
            let mut sharded =
                ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, SHARDS).unwrap();
            sharded.run_batch(&first, threads);
            // The mid-run flip, between batches.
            sharded.tamper_raw(victim, 7, 0x80).unwrap();
            let outcomes = sharded.run_interleaved(&second, schedule_seed);
            assert_eq!(
                outcomes[0],
                OpOutcome::Detected(IntegrityError::DataMac {
                    line_addr: victim * CACHELINE_BYTES as u64
                }),
                "threads {threads}, schedule {schedule_seed}: flip went undetected"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form of the lockstep oracle: any seeded mix, any worker
    /// count, any schedule seed — outcomes match the serial oracle and
    /// the root is schedule- and thread-count-invariant.
    #[test]
    fn any_seeded_mix_is_equivalent_and_invariant(
        mix_seed in any::<u64>(),
        schedule_seed in any::<u64>(),
        thread_sel in any::<u64>(),
    ) {
        let lines = MIB / CACHELINE_BYTES as u64;
        let ops = mix(mix_seed, 200, lines);
        let (serial, _) = serial_outcomes(&ops, MIB);
        let threads = THREAD_COUNTS[(thread_sel % 4) as usize];

        let mut batched =
            ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, SHARDS).unwrap();
        let batch_out = batched.run_batch(&ops, threads);
        for (i, (got, want)) in batch_out.iter().zip(&serial).enumerate() {
            prop_assert_eq!(got, want, "mix {}: op {} diverged from serial", mix_seed, i);
        }

        let mut interleaved =
            ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, SHARDS).unwrap();
        let inter_out = interleaved.run_interleaved(&ops, schedule_seed);
        prop_assert_eq!(&inter_out, &batch_out, "interleaved outcomes diverged");
        prop_assert_eq!(
            interleaved.combined_root(),
            batched.combined_root(),
            "root depends on the schedule"
        );
    }
}
