//! Property tests for the epoch-seal codec and the WAL's seal-ordering
//! contract (`core::persist::epoch`): seals round-trip byte-exactly,
//! every truncation or byte flip is a *typed* refusal, forged MACs never
//! verify, and a WAL only replays when its seal sequence is strictly
//! monotonic per the two-phase cut protocol.

use proptest::prelude::*;

use morphtree_core::persist::{
    replay_epochs, EpochSeal, RecoveryError, SealPhase, WalRecord, WalWriter,
};

fn phase_of(bit: bool) -> SealPhase {
    if bit {
        SealPhase::Commit
    } else {
        SealPhase::Prepare
    }
}

/// The WAL's acceptance rule for a seal following `prev`: a strictly
/// higher epoch, or the same epoch's Prepare→Commit transition.
fn ordered(prev: (u64, SealPhase), next: (u64, SealPhase)) -> bool {
    next.0 > prev.0
        || (next.0 == prev.0 && prev.1 == SealPhase::Prepare && next.1 == SealPhase::Commit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → decode is the identity, the decoded seal verifies under
    /// its minting key, and a different key refuses it.
    #[test]
    fn seals_round_trip_and_macs_are_keyed(
        key_lo in any::<u64>(),
        key_hi in any::<u64>(),
        epoch in any::<u64>(),
        commit in any::<bool>(),
        root in any::<u64>(),
        combined in any::<u64>(),
    ) {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&key_lo.to_le_bytes());
        key[8..].copy_from_slice(&key_hi.to_le_bytes());
        let seal = EpochSeal::new(key, epoch, phase_of(commit), root, combined);
        let decoded = EpochSeal::decode(&seal.encode()).unwrap();
        prop_assert_eq!(decoded, seal);
        prop_assert!(decoded.verify(key));

        let mut other = key;
        other[3] ^= 0x01;
        prop_assert!(!decoded.verify(other), "seal verified under a foreign key");
    }

    /// Every strict prefix of an encoded seal is refused as truncated —
    /// never a panic, never a partial decode.
    #[test]
    fn truncated_seals_are_typed_refusals(
        epoch in any::<u64>(),
        commit in any::<bool>(),
        cut in 0usize..EpochSeal::ENCODED_LEN,
    ) {
        let seal = EpochSeal::new([0x3c; 16], epoch, phase_of(commit), 7, 11);
        let bytes = seal.encode();
        match EpochSeal::decode(&bytes[..cut]) {
            Err(RecoveryError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "cut {}: wrong error {}", cut, other),
            Ok(_) => prop_assert!(false, "cut {}: truncated seal decoded", cut),
        }
    }

    /// Any single-byte flip anywhere in the image is caught by the
    /// trailing checksum (or the phase code) as a typed corruption error.
    #[test]
    fn flipped_seals_are_typed_refusals(
        epoch in any::<u64>(),
        root in any::<u64>(),
        at in 0usize..EpochSeal::ENCODED_LEN,
        bit in 0u32..8,
    ) {
        let seal = EpochSeal::new([0x3c; 16], epoch, SealPhase::Commit, root, root);
        let mut bytes = seal.encode();
        bytes[at] ^= 1u8 << bit;
        match EpochSeal::decode(&bytes) {
            Err(RecoveryError::CorruptSeal { .. }) => {}
            Err(other) => prop_assert!(false, "flip at {}: wrong error {}", at, other),
            Ok(_) => prop_assert!(false, "flip at {} bit {} decoded cleanly", at, bit),
        }
    }

    /// A WAL accepts a seal sequence iff every adjacent pair is strictly
    /// monotonic (epoch strictly rises, or Prepare→Commit within one
    /// epoch): regressions, repeats, and Commit→Prepare within an epoch
    /// are all `CorruptWal`.
    #[test]
    fn seal_ordering_is_strictly_monotonic(
        raw in proptest::collection::vec((0u64..5, any::<bool>()), 1..8),
    ) {
        let seals: Vec<(u64, SealPhase)> =
            raw.into_iter().map(|(e, c)| (e, phase_of(c))).collect();
        let mut wal = WalWriter::new();
        for &(epoch, phase) in &seals {
            wal.append(&WalRecord::Seal(EpochSeal::new([0x3c; 16], epoch, phase, 1, 2)));
        }
        let valid = seals.windows(2).all(|w| ordered(w[0], w[1]));
        match replay_epochs(wal.bytes()) {
            Ok(epochs) => {
                prop_assert!(valid, "out-of-order seals {:?} replayed", seals);
                prop_assert_eq!(epochs.seals.len(), seals.len());
                for (point, &(epoch, phase)) in epochs.seals.iter().zip(&seals) {
                    prop_assert_eq!(point.seal.epoch, epoch);
                    prop_assert_eq!(point.seal.phase, phase);
                    prop_assert_eq!(point.txns_before, 0);
                }
            }
            Err(RecoveryError::CorruptWal { .. }) => {
                prop_assert!(!valid, "ordered seals {:?} refused", seals);
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }
}

/// The exact boundary cases of the ordering rule, pinned deterministically
/// alongside the property sweep.
#[test]
fn seal_ordering_boundary_cases() {
    let accepts = |seq: &[(u64, SealPhase)]| {
        let mut wal = WalWriter::new();
        for &(epoch, phase) in seq {
            wal.append(&WalRecord::Seal(EpochSeal::new([0x3c; 16], epoch, phase, 1, 2)));
        }
        replay_epochs(wal.bytes()).is_ok()
    };
    use SealPhase::{Commit, Prepare};
    assert!(accepts(&[(1, Prepare), (1, Commit)]), "two-phase cut");
    assert!(accepts(&[(1, Commit), (2, Prepare), (2, Commit)]), "steady state");
    assert!(accepts(&[(1, Prepare), (2, Prepare)]), "prepare-only epochs rise");
    assert!(!accepts(&[(1, Commit), (1, Commit)]), "repeated commit");
    assert!(!accepts(&[(1, Commit), (1, Prepare)]), "commit then prepare");
    assert!(!accepts(&[(2, Commit), (1, Commit)]), "epoch regression");
}
