//! End-to-end coverage for the `core::proof` subsystem: the no-slack-byte
//! guarantee (an exhaustive single-byte-flip campaign over encoded
//! proofs), property-driven round-trips over random line sets, and
//! sharded-vs-serial equivalence against the serial memory as a lockstep
//! oracle.

use proptest::prelude::*;

use morphtree_core::concurrent::ShardedMemory;
use morphtree_core::functional::SecureMemory;
use morphtree_core::proof::{decode_proof, verify_any_proof, AnyProof};
use morphtree_core::tree::TreeConfig;

const KEY: [u8; 16] = [0x33; 16];
const MEM: u64 = 256 << 10;

fn payload(line: u64) -> [u8; 64] {
    [(line as u8).wrapping_mul(73) ^ 0xa5; 64]
}

/// A serial memory with `written` lines populated.
fn serial_memory(config: TreeConfig, written: u64) -> SecureMemory {
    let mut m = SecureMemory::new(config, MEM, KEY);
    for line in 0..written {
        m.write(line, &payload(line));
    }
    m
}

#[test]
fn every_single_byte_flip_of_a_serial_proof_is_rejected() {
    let memory = serial_memory(TreeConfig::sc64(), 128);
    let proof = memory.prove(&[0, 17, 63, 127]).unwrap();
    let encoded = proof.encode();
    // The trailing checksum binds every byte, so a tampered proof must
    // already fail to *decode* — no byte is slack, none can be flipped
    // into a different valid proof.
    for i in 0..encoded.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = encoded.clone();
            bad[i] ^= bit;
            assert!(decode_proof(&bad).is_err(), "flip {bit:#04x} at byte {i} accepted");
        }
    }
    // Truncations at every length fail too.
    for len in 0..encoded.len() {
        assert!(decode_proof(&encoded[..len]).is_err(), "truncation to {len} accepted");
    }
    // And the untampered bytes still round-trip and verify.
    let decoded = decode_proof(&encoded).unwrap();
    verify_any_proof(&decoded, memory.root_digest()).unwrap();
}

#[test]
fn every_single_byte_flip_of_a_sharded_proof_is_rejected() {
    let mut memory = ShardedMemory::new(TreeConfig::morphtree(), MEM, KEY, 4).unwrap();
    let last = memory.plan().data_lines() - 1;
    for line in [0, 9, 1000, 2000, last] {
        memory.write(line, &payload(line));
    }
    let root = memory.combined_root();
    let proof = memory.prove(&[0, 9, 1000, 2000, last]).unwrap();
    let encoded = proof.encode();
    for i in 0..encoded.len() {
        let mut bad = encoded.clone();
        bad[i] ^= 1;
        assert!(decode_proof(&bad).is_err(), "flip at byte {i} accepted");
    }
    let decoded = decode_proof(&encoded).unwrap();
    verify_any_proof(&decoded, root).unwrap();
}

#[test]
fn sharded_and_serial_proofs_agree_with_the_lockstep_oracle() {
    // The same write history drives a serial memory (the oracle) and a
    // sharded one; proofs from both must verify against their own roots
    // and authenticated reads must return identical plaintexts.
    let config = TreeConfig::morphtree();
    let mut serial = SecureMemory::new(config.clone(), MEM, KEY);
    let mut sharded = ShardedMemory::new(config, MEM, KEY, 4).unwrap();
    let lines: Vec<u64> = (0..96).map(|i| i * 41 % sharded.plan().data_lines()).collect();
    for &line in &lines {
        serial.write(line, &payload(line));
        sharded.write(line, &payload(line));
    }
    let proved: Vec<u64> = lines.iter().copied().step_by(7).collect();

    let serial_proof = serial.prove(&proved).unwrap();
    let sharded_root = sharded.combined_root();
    let sharded_proof = sharded.prove(&proved).unwrap();

    let from_serial = serial_proof.verify_and_read(serial.root_digest()).unwrap();
    let from_sharded = sharded_proof.verify_and_read(sharded_root).unwrap();
    assert_eq!(from_serial, from_sharded, "authenticated reads disagree");
    for &(line, plaintext) in &from_serial {
        assert_eq!(plaintext, payload(line), "line {line}");
        assert_eq!(serial.read(line).unwrap(), plaintext, "oracle read, line {line}");
    }

    // Both encodings survive a decode round-trip byte-identically.
    for encoded in [serial_proof.encode(), sharded_proof.encode()] {
        assert_eq!(decode_proof(&encoded).unwrap().encode(), encoded);
    }
}

fn any_config() -> impl Strategy<Value = TreeConfig> {
    prop_oneof![
        Just(TreeConfig::sc64()),
        Just(TreeConfig::vault()),
        Just(TreeConfig::morphtree()),
        Just(TreeConfig::morphtree_zcc_only()),
        Just(TreeConfig::morphtree_single_base()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any proof over any written-line subset round-trips byte-identically
    /// through its codec and verifies against the live root.
    #[test]
    fn proofs_round_trip_and_verify_over_random_line_sets(
        config in any_config(),
        mut picks in proptest::collection::vec(0u64..96, 1..12),
    ) {
        let memory = serial_memory(config, 96);
        let proof = memory.prove(&picks).unwrap();
        let encoded = proof.encode();
        let decoded = decode_proof(&encoded).unwrap();
        prop_assert_eq!(decoded.encode(), encoded.clone(), "re-encode must be stable");
        let stats = verify_any_proof(&decoded, memory.root_digest()).unwrap();
        picks.sort_unstable();
        picks.dedup();
        prop_assert_eq!(stats.data_lines, picks.len() as u64);
        prop_assert_eq!(decoded.lines(), picks);
        // Verification really is standalone: the AnyProof value plus the
        // root are all that is consulted (no captures of `memory` here).
        if let AnyProof::Serial(p) = &decoded {
            let reads = p.verify_and_read(memory.root_digest()).unwrap();
            for (line, plaintext) in reads {
                prop_assert_eq!(plaintext, payload(line));
            }
        }
    }

    /// A randomly placed byte flip is always rejected, whatever the
    /// config, line set, or flipped bit.
    #[test]
    fn random_tampers_never_verify(
        config in any_config(),
        picks in proptest::collection::vec(0u64..96, 1..8),
        offset in any::<usize>(),
        bit in 0u8..8,
    ) {
        let memory = serial_memory(config, 96);
        let mut encoded = memory.prove(&picks).unwrap().encode();
        let at = offset % encoded.len();
        encoded[at] ^= 1 << bit;
        match decode_proof(&encoded) {
            Err(_) => {}
            Ok(p) => prop_assert!(
                verify_any_proof(&p, memory.root_digest()).is_err(),
                "tampered byte {at} bit {bit} verified",
            ),
        }
    }
}
