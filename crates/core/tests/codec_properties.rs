//! Property coverage for the morphable-counter codec (the Fig 8/13
//! layouts in `counters/morph/codec.rs`): encode→decode identity for
//! randomly-driven ZCC, Uniform, and MCR lines, re-encode stability, and
//! rejection of malformed bit patterns.

use std::collections::HashSet;

use proptest::prelude::*;

use morphtree_core::counters::bits::set_bits;
use morphtree_core::counters::morph::{MorphFormat, MorphLine, MorphMode};
use morphtree_core::counters::CounterLine;
use morphtree_core::CodecError;

fn any_mode() -> impl Strategy<Value = MorphMode> {
    prop_oneof![
        Just(MorphMode::ZccOnly),
        Just(MorphMode::ZccRebase),
        Just(MorphMode::SingleBase),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any line state reachable by increments round-trips bit-exactly, in
    /// every mode, and the decoded line re-encodes to the same image.
    #[test]
    fn encode_decode_identity_over_random_histories(
        mode in any_mode(),
        ops in proptest::collection::vec((0usize..128, 1usize..6), 0..60),
        mac in any::<u64>(),
    ) {
        let mut line = MorphLine::new(mode);
        for (slot, times) in ops {
            for _ in 0..times {
                let _ = line.increment(slot);
            }
        }
        line.set_mac(mac);
        let image = line.encode();
        let decoded = MorphLine::decode(line.mode(), &image).unwrap();
        prop_assert_eq!(&decoded, &line);
        prop_assert_eq!(decoded.encode(), image, "re-encode must be stable");
    }

    /// Sparse lines (≤ 64 distinct non-zero slots) stay in the ZCC format
    /// and round-trip, MAC included.
    #[test]
    fn zcc_lines_round_trip(
        slots in proptest::collection::vec(0usize..128, 1..64),
        mac in any::<u64>(),
    ) {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        let mut distinct = HashSet::new();
        for slot in slots {
            if distinct.len() >= 64 && !distinct.contains(&slot) {
                continue;
            }
            distinct.insert(slot);
            let _ = line.increment(slot);
        }
        prop_assume!(line.format() == MorphFormat::Zcc);
        line.set_mac(mac);
        let decoded = MorphLine::decode(line.mode(), &line.encode()).unwrap();
        prop_assert_eq!(decoded, line);
    }

    /// Dense rebasing lines (all 128 slots written) morph to MCR and
    /// round-trip with non-trivial bases.
    #[test]
    fn mcr_lines_round_trip(
        extra in proptest::collection::vec((0usize..128, 1usize..4), 0..40),
        mac in any::<u64>(),
    ) {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        for slot in 0..128 {
            let _ = line.increment(slot);
        }
        for (slot, times) in extra {
            for _ in 0..times {
                let _ = line.increment(slot);
            }
        }
        prop_assume!(line.format() == MorphFormat::Mcr);
        line.set_mac(mac);
        let decoded = MorphLine::decode(line.mode(), &line.encode()).unwrap();
        prop_assert_eq!(decoded, line);
    }

    /// ZCC-only lines saturate into the uniform 128 × 3-bit format and
    /// round-trip.
    #[test]
    fn uniform_lines_round_trip(
        extra in proptest::collection::vec(0usize..128, 0..64),
        mac in any::<u64>(),
    ) {
        let mut line = MorphLine::new(MorphMode::ZccOnly);
        for slot in 0..128 {
            let _ = line.increment(slot);
        }
        for slot in extra {
            let _ = line.increment(slot);
        }
        prop_assume!(line.format() == MorphFormat::Uniform);
        line.set_mac(mac);
        let decoded = MorphLine::decode(line.mode(), &line.encode()).unwrap();
        prop_assert_eq!(decoded, line);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A ZCC image whose stored ctr-sz disagrees with its bit-vector
    /// population is rejected with a typed error, whatever bogus value is
    /// stored.
    #[test]
    fn decode_rejects_corrupted_ctr_sz(
        wrong in 0u64..64,
        slots in proptest::collection::vec(0usize..128, 1..40),
    ) {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        for slot in slots {
            let _ = line.increment(slot);
        }
        prop_assume!(line.format() == MorphFormat::Zcc);
        let mut image = line.encode();
        let actual = u64::from((image[0] >> 1) & 0x3f);
        // 3 marks the uniform format: a valid (different) decode path,
        // not a malformed one.
        prop_assume!(wrong != actual && wrong != 3);
        set_bits(&mut image, 1, 6, wrong);
        prop_assert_eq!(
            MorphLine::decode(MorphMode::ZccRebase, &image),
            Err(CodecError::CtrSizeMismatch { stored: wrong, derived: actual }),
            "ctr-sz {} accepted against population {}", wrong, actual
        );
    }

    /// A ZCC image claiming more than 64 non-zero counters (impossible —
    /// the format would have morphed) is rejected.
    #[test]
    fn decode_rejects_overfull_bit_vectors(population in 65usize..=128) {
        let mut image = [0u8; 64];
        set_bits(&mut image, 0, 1, 0);
        set_bits(&mut image, 1, 6, 4);
        for slot in 0..population {
            set_bits(&mut image, 64 + slot, 1, 1);
        }
        prop_assert_eq!(
            MorphLine::decode(MorphMode::ZccRebase, &image),
            Err(CodecError::TooManyNonZero { nonzero: population }),
            "bit-vector population {} accepted", population
        );
    }
}
