//! Property suite for the shard partition laws: a [`ShardPlan`] must be a
//! *true partition* of the protected address space — every address maps
//! to exactly one shard, shard ranges tile the space with no gap or
//! overlap, and splitting a [`PagedStore`] by shard then merging the
//! parts reconstructs the exact serial contents.

use proptest::prelude::*;

use morphtree_core::concurrent::{ShardPlan, SplitMix64};
use morphtree_core::store::PagedStore;

/// Derives a valid `(memory_bytes, shards)` pair from two raw seeds:
/// 1..=4096 lines, 1..=min(lines, 64) shards.
fn arb_plan(size_sel: u64, shard_sel: u64) -> ShardPlan {
    let lines = 1 + size_sel % 4096;
    let shards = 1 + (shard_sel % lines.min(64)) as usize;
    ShardPlan::new(lines * 64, shards).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every address maps to exactly one shard, and that shard's range
    /// contains it: `shard_base(s) <= line < shard_base(s) + shard_lines(s)`.
    #[test]
    fn every_address_maps_to_exactly_one_owning_shard(
        size_sel in any::<u64>(),
        shard_sel in any::<u64>(),
        line_sel in any::<u64>(),
    ) {
        let plan = arb_plan(size_sel, shard_sel);
        let line = line_sel % plan.data_lines();
        let owner = plan.shard_of(line);
        prop_assert!(owner < plan.shards());
        prop_assert!(plan.shard_base(owner) <= line);
        prop_assert!(line < plan.shard_base(owner) + plan.shard_lines(owner));
        // No other shard's range contains the line (no overlap).
        for other in 0..plan.shards() {
            if other != owner {
                let inside = plan.shard_base(other) <= line
                    && line < plan.shard_base(other) + plan.shard_lines(other);
                prop_assert!(!inside, "line {} also inside shard {}", line, other);
            }
        }
        // Local/global translation is a bijection on the owner's range.
        prop_assert_eq!(plan.global_line(owner, plan.local_line(line)), line);
    }

    /// Shard ranges tile the space: contiguous, in order, summing to the
    /// full line count (no gap, no overlap — the other half of the
    /// partition law, checked structurally rather than pointwise).
    #[test]
    fn shard_ranges_tile_the_space(
        size_sel in any::<u64>(),
        shard_sel in any::<u64>(),
    ) {
        let plan = arb_plan(size_sel, shard_sel);
        let mut next = 0u64;
        for shard in 0..plan.shards() {
            prop_assert_eq!(plan.shard_base(shard), next, "gap or overlap before shard {}", shard);
            prop_assert!(plan.shard_lines(shard) > 0, "shard {} owns no lines", shard);
            next += plan.shard_lines(shard);
        }
        prop_assert_eq!(next, plan.data_lines());
    }

    /// Split-then-merge reconstructs the exact serial `PagedStore`
    /// contents: same populated indices, same values, in the same
    /// index-iteration order.
    #[test]
    fn split_then_merge_reconstructs_serial_contents(
        size_sel in any::<u64>(),
        shard_sel in any::<u64>(),
        fill_seed in any::<u64>(),
    ) {
        let plan = arb_plan(size_sel, shard_sel);
        let mut store: PagedStore<u64> = PagedStore::new(plan.data_lines());
        let mut rng = SplitMix64::new(fill_seed);
        // Populate a pseudo-random ~half of the space.
        for line in 0..plan.data_lines() {
            if rng.below(2) == 0 {
                store.insert(line, rng.next_u64());
            }
        }

        let parts = plan.split_store(&store);
        prop_assert_eq!(parts.len(), plan.shards());
        // Entry conservation: every entry lands in exactly one part.
        let total: u64 = parts.iter().map(PagedStore::len).sum();
        prop_assert_eq!(total, store.len());
        // Each part holds exactly its shard's entries, locally indexed.
        for (shard, part) in parts.iter().enumerate() {
            for (local, value) in part.iter() {
                let global = plan.global_line(shard, local);
                prop_assert_eq!(plan.shard_of(global), shard);
                prop_assert_eq!(store.get(global), Some(value));
            }
        }

        let merged = plan.merge_stores(&parts);
        let original: Vec<(u64, u64)> = store.iter().map(|(i, v)| (i, *v)).collect();
        let rebuilt: Vec<(u64, u64)> = merged.iter().map(|(i, v)| (i, *v)).collect();
        prop_assert_eq!(original, rebuilt, "merge is not the exact serial contents");
    }
}

/// Deterministic spot-checks at the boundaries proptest seeds might not
/// hit: single-shard plans, shard == line count, and remainder handling.
#[test]
fn degenerate_partitions_still_satisfy_the_laws() {
    // One shard owns everything.
    let plan = ShardPlan::new(640, 1).unwrap();
    assert_eq!(plan.shard_lines(0), 10);
    assert_eq!(plan.shard_of(9), 0);

    // As many shards as lines: each owns exactly one line.
    let plan = ShardPlan::new(640, 10).unwrap();
    for line in 0..10 {
        assert_eq!(plan.shard_of(line), line as usize);
        assert_eq!(plan.shard_lines(line as usize), 1);
    }

    // Prime line count over a non-divisor shard count.
    let plan = ShardPlan::new(97 * 64, 5).unwrap();
    let total: u64 = (0..5).map(|s| plan.shard_lines(s)).sum();
    assert_eq!(total, 97);
    assert_eq!(plan.shard_lines(4), 97 - 4 * (97 / 5));
}
