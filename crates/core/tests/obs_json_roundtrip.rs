//! Round-trip property for the obs JSON emitter/parser: for any value tree
//! the metrics layer can produce, emit → parse → emit is byte-identical.
//!
//! Byte-*idempotence* (not value equality) is the contract the sweep
//! determinism suite and the golden fixtures rely on, and it is the
//! strongest property that holds: non-finite floats intentionally emit as
//! `null` (parsing back as `Value::Null`), and an integral float ≥ 1e15
//! prints without a decimal point (parsing back as `Value::UInt`) — in both
//! cases the second emission must reproduce the first byte-for-byte.

use std::collections::BTreeMap;

use proptest::prelude::*;

use morphtree_core::obs::{parse_json, JsonValue};

/// Deterministic JSON-tree generator. The vendored proptest shim has no
/// recursive or mapped strategies, so trees are grown from a sampled seed
/// with a SplitMix64 stream.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn value(&mut self, depth: usize) -> JsonValue {
        let leaf_kinds = 5;
        let kinds = if depth == 0 { leaf_kinds } else { leaf_kinds + 2 };
        match self.next() % kinds {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(self.next().is_multiple_of(2)),
            2 => JsonValue::UInt(self.next()),
            3 => JsonValue::Float(self.float()),
            4 => JsonValue::Str(self.string()),
            5 => {
                let n = (self.next() % 4) as usize;
                JsonValue::Array((0..n).map(|_| self.value(depth - 1)).collect())
            }
            _ => {
                let n = (self.next() % 4) as usize;
                let mut map = BTreeMap::new();
                for _ in 0..n {
                    let key = self.string();
                    let value = self.value(depth - 1);
                    map.insert(key, value);
                }
                JsonValue::Object(map)
            }
        }
    }

    /// Floats weighted toward the writer's special cases: null gauges
    /// (non-finite), signed zero, the integral `{f:.1}` path on both sides
    /// of the 1e15 threshold, and arbitrary bit patterns.
    fn float(&mut self) -> f64 {
        match self.next() % 8 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => (self.next() % 1_000_000) as f64,
            5 => 1e15 + (self.next() % 1_000) as f64,
            6 => -((self.next() % 1_000_000) as f64) / 8.0,
            _ => f64::from_bits(self.next()),
        }
    }

    /// Strings mixing plain ASCII with every escape class the writer
    /// handles: quotes, backslashes, named escapes, control `\u` escapes,
    /// and multi-byte UTF-8.
    fn string(&mut self) -> String {
        let n = (self.next() % 8) as usize;
        (0..n)
            .map(|_| match self.next() % 8 {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\t',
                4 => '\u{1}',
                5 => 'é',
                6 => '日',
                _ => char::from(b'a' + (self.next() % 26) as u8),
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// emit → parse → emit is byte-identical, and a second round trip is a
    /// fixed point (parse(emit2) emits emit2 again).
    #[test]
    fn emit_parse_emit_is_byte_identical(seed in any::<u64>(), depth in 0usize..4) {
        let value = Gen(seed).value(depth);
        let first = value.to_pretty_string();
        let reparsed = parse_json(&first).expect("writer output must parse");
        let second = reparsed.to_pretty_string();
        prop_assert_eq!(&first, &second, "emit→parse→emit diverged");
        let third = parse_json(&second).expect("second emission must parse");
        prop_assert_eq!(third.to_pretty_string(), second, "round trip is not a fixed point");
    }
}

/// The documented lossy-but-idempotent corners, pinned explicitly so a
/// regression names the exact case rather than a random seed.
#[test]
fn lossy_corners_are_idempotent() {
    let cases = [
        ("nan gauge", JsonValue::Float(f64::NAN)),
        ("infinite rate", JsonValue::Float(f64::INFINITY)),
        ("negative zero", JsonValue::Float(-0.0)),
        ("integral above 1e15", JsonValue::Float(1.0e16)),
        ("null gauge in object", {
            let mut map = BTreeMap::new();
            map.insert("p99".to_string(), JsonValue::Null);
            map.insert("mean".to_string(), JsonValue::Float(f64::NEG_INFINITY));
            JsonValue::Object(map)
        }),
    ];
    for (label, value) in cases {
        let first = value.to_pretty_string();
        let reparsed = parse_json(&first).unwrap();
        assert_eq!(reparsed.to_pretty_string(), first, "{label}");
    }
    // And the two intentional type conversions, stated outright.
    assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
    assert_eq!(
        parse_json(&JsonValue::Float(1.0e16).to_pretty_string()).unwrap(),
        JsonValue::UInt(10_000_000_000_000_000)
    );
}
