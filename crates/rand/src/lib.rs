//! Offline in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small API subset it actually uses instead of depending on
//! crates.io: [`rngs::SmallRng`] (xoshiro256++, the same algorithm family
//! rand 0.8 uses for its 64-bit `SmallRng`), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`SeedableRng`].
//!
//! Everything here is deterministic: a given seed always produces the same
//! stream, which the experiment layer's serial-vs-parallel determinism
//! tests rely on. The generator is *not* cryptographic — the workspace's
//! security substrate lives in `morphtree-crypto`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seeding support (the `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` via Lemire's multiply-shift
/// method with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$ty>::MIN && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (end - start) as u64 + 1;
                start + uniform_below(rng, span) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = next_f64(rng) as $ty;
                let sample = self.start + u * (self.end - self.start);
                // Guard against rounding onto the excluded endpoint.
                if sample >= self.end { self.start } else { sample }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Standard distributions (`rand::distributions` subset).
pub mod distributions {
    use super::RngCore;

    /// The standard distribution: uniform over a type's natural domain.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// A distribution that can sample values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::next_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            super::next_f64(rng) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize);

    impl<const N: usize> Distribution<[u8; N]> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }
}

/// Concrete generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    ///
    /// Matches the algorithm rand 0.8 uses for 64-bit `SmallRng`; seeded
    /// from a single `u64` through SplitMix64 exactly as rand does.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            let v: u64 = rng.gen_range(0u64..7);
            assert!(v < 7);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 7, "all residues reachable");
        for _ in 0..4096 {
            let v: u8 = rng.gen_range(1u8..=255);
            assert!(v >= 1);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..4096 {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v), "{v}");
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let fraction = hits as f64 / 100_000.0;
        assert!((fraction - 0.3).abs() < 0.01, "{fraction}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(4);
        let total: u64 = (0..100_000u64).map(|_| rng.gen_range(0u64..1000)).sum();
        let mean = total as f64 / 100_000.0;
        assert!((mean - 499.5).abs() < 5.0, "{mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        use super::RngCore as _;
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
