//! Access-pattern generators.
//!
//! The paper's overflow analysis (§III-A) distinguishes workloads by their
//! *spatial* write behaviour: streaming applications write uniformly to all
//! cachelines of write-heavy pages (dense counter usage), while irregular
//! applications scatter writes over hot subsets of a large footprint
//! (sparse counter usage). These generators produce virtual line indices
//! with exactly those statistics.

use rand::rngs::SmallRng;
use rand::Rng;

/// The spatial access-pattern classes used to model Table II's benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternKind {
    /// Sequential sweep over the footprint (libquantum, lbm, milc, …):
    /// maximal spatial locality, dense counter usage.
    Streaming,
    /// Uniform random lines over the footprint (mcf, omnetpp, …): minimal
    /// reuse, sparse per-page writes.
    UniformRandom,
    /// A hot subset receives most accesses (xalancbmk, dealII, …).
    HotSet {
        /// Fraction of the footprint that is hot.
        hot_fraction: f64,
        /// Probability an access falls in the hot set.
        hot_probability: f64,
    },
    /// Power-law popularity over the footprint — graph analytics on
    /// scale-free networks (the GAP Twitter/Web workloads).
    PowerLaw {
        /// Skew exponent: larger = more concentrated on low indices.
        skew: f64,
    },
    /// A blend of a streaming sweep and uniform-random accesses
    /// (GemsFDTD, soplex, …: "neither sparse nor uniform", §IV-3).
    Mixed {
        /// Fraction of accesses that stream.
        streaming_fraction: f64,
    },
}

/// Stateful generator of virtual line indices for one core.
#[derive(Debug, Clone)]
pub struct PatternState {
    kind: PatternKind,
    footprint_lines: u64,
    cursor: u64,
}

impl PatternState {
    /// Creates a generator over a footprint of `footprint_lines` virtual
    /// cachelines.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_lines` is zero.
    #[must_use]
    pub fn new(kind: PatternKind, footprint_lines: u64) -> Self {
        assert!(footprint_lines > 0, "footprint must be non-empty");
        PatternState { kind, footprint_lines, cursor: 0 }
    }

    /// The footprint in lines.
    #[must_use]
    pub fn footprint_lines(&self) -> u64 {
        self.footprint_lines
    }

    /// Produces the next virtual line index.
    pub fn next_line(&mut self, rng: &mut SmallRng) -> u64 {
        let n = self.footprint_lines;
        match self.kind {
            PatternKind::Streaming => {
                let line = self.cursor;
                self.cursor = (self.cursor + 1) % n;
                line
            }
            PatternKind::UniformRandom => rng.gen_range(0..n),
            PatternKind::HotSet { hot_fraction, hot_probability } => {
                let hot_lines = ((n as f64 * hot_fraction) as u64).max(1);
                if rng.gen_bool(hot_probability) {
                    // The hot set is *scattered* across the virtual space
                    // (every k-th page), mirroring hot structures
                    // interleaved with cold ones.
                    let stride = (n / hot_lines).max(1);
                    rng.gen_range(0..hot_lines) * stride % n
                } else {
                    rng.gen_range(0..n)
                }
            }
            PatternKind::PowerLaw { skew } => {
                // Inverse-CDF sampling of a bounded Pareto-like popularity:
                // index = n * u^skew concentrates mass near index 0 for
                // skew > 1. Indices are then bit-mixed so popular lines
                // scatter over the virtual footprint like graph vertices.
                let u: f64 = rng.gen();
                let rank = ((n as f64) * u.powf(skew)) as u64 % n;
                // Deterministic permutation (splitmix-style) of ranks.
                let mixed = rank
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(31)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                mixed % n
            }
            PatternKind::Mixed { streaming_fraction } => {
                if rng.gen_bool(streaming_fraction) {
                    let line = self.cursor;
                    self.cursor = (self.cursor + 1) % n;
                    line
                } else {
                    rng.gen_range(0..n)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    fn sample(kind: PatternKind, footprint: u64, count: usize) -> Vec<u64> {
        let mut state = PatternState::new(kind, footprint);
        let mut r = rng();
        (0..count).map(|_| state.next_line(&mut r)).collect()
    }

    #[test]
    fn streaming_is_sequential_and_wraps() {
        let lines = sample(PatternKind::Streaming, 4, 6);
        assert_eq!(lines, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn uniform_random_covers_footprint() {
        let lines = sample(PatternKind::UniformRandom, 64, 4096);
        let distinct: std::collections::HashSet<_> = lines.iter().collect();
        assert!(distinct.len() > 60, "only {} distinct", distinct.len());
        assert!(lines.iter().all(|&l| l < 64));
    }

    #[test]
    fn hot_set_concentrates_accesses() {
        let kind = PatternKind::HotSet { hot_fraction: 0.1, hot_probability: 0.9 };
        let lines = sample(kind, 1000, 10_000);
        // Count accesses to the ~100 hot lines (stride-10 multiples).
        let hot_hits = lines.iter().filter(|&&l| l % 10 == 0).count();
        assert!(hot_hits > 8_000, "hot hits {hot_hits}");
    }

    #[test]
    fn power_law_is_skewed() {
        let kind = PatternKind::PowerLaw { skew: 3.0 };
        let lines = sample(kind, 1 << 20, 50_000);
        let mut counts = std::collections::HashMap::new();
        for l in lines {
            *counts.entry(l).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        // A heavily skewed distribution has a very popular head.
        assert!(max > 100, "max popularity {max}");
        // ...but still touches many distinct lines.
        assert!(counts.len() > 1_000, "distinct {}", counts.len());
    }

    #[test]
    fn mixed_interleaves_streaming_and_random() {
        let kind = PatternKind::Mixed { streaming_fraction: 0.5 };
        let lines = sample(kind, 1 << 16, 10_000);
        // Streaming component: low indices visited in order; cursor reaches
        // roughly 5000.
        let sequential_pairs = lines.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(sequential_pairs > 1_000, "{sequential_pairs} sequential pairs");
        let far = lines.iter().filter(|&&l| l > 10_000).count();
        assert!(far > 2_000, "{far} random accesses");
    }

    #[test]
    fn all_patterns_respect_bounds() {
        for kind in [
            PatternKind::Streaming,
            PatternKind::UniformRandom,
            PatternKind::HotSet { hot_fraction: 0.05, hot_probability: 0.95 },
            PatternKind::PowerLaw { skew: 2.0 },
            PatternKind::Mixed { streaming_fraction: 0.7 },
        ] {
            for &footprint in &[1u64, 2, 63, 1 << 18] {
                let lines = sample(kind, footprint, 500);
                assert!(lines.iter().all(|&l| l < footprint), "{kind:?}/{footprint}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_footprint() {
        let _ = PatternState::new(PatternKind::Streaming, 0);
    }
}
