//! The OS page allocator with Table I's *random* allocation policy.
//!
//! Random virtual→physical page placement is load-bearing for the paper's
//! analysis: it intersperses hot and cold pages in physical memory, so an
//! integrity-tree counter line (which covers a contiguous *physical* span)
//! sees only a few hot counters — the sparse usage that Zero Counter
//! Compression exploits (§III-A, Fig 7).

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{LINES_PER_PAGE, PAGE_BYTES};

/// Allocates physical page frames uniformly at random over the whole
/// memory, shared by all cores of a workload.
#[derive(Debug)]
pub struct PhysicalAllocator {
    total_pages: u64,
    used: HashSet<u64>,
    rng: SmallRng,
}

impl PhysicalAllocator {
    /// Creates an allocator over `memory_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is smaller than one page.
    #[must_use]
    pub fn new(memory_bytes: u64, seed: u64) -> Self {
        let total_pages = memory_bytes / PAGE_BYTES;
        assert!(total_pages > 0, "memory smaller than a page");
        PhysicalAllocator {
            total_pages,
            used: HashSet::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0x0070_a6e5_u64),
        }
    }

    /// Number of allocatable pages.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Pages allocated so far.
    #[must_use]
    pub fn allocated_pages(&self) -> u64 {
        self.used.len() as u64
    }

    /// Allocates a random free physical page frame.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted.
    pub fn alloc(&mut self) -> u64 {
        assert!(
            (self.used.len() as u64) < self.total_pages,
            "physical memory exhausted"
        );
        loop {
            let candidate = self.rng.gen_range(0..self.total_pages);
            if self.used.insert(candidate) {
                return candidate;
            }
        }
    }
}

/// A per-process (per-core) page table mapping virtual pages to physical
/// frames, populated lazily on first touch.
#[derive(Debug, Default)]
pub struct PageMap {
    table: HashMap<u64, u64>,
}

impl PageMap {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> Self {
        PageMap::default()
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Translates a virtual line index to a physical line index, allocating
    /// a frame on first touch.
    pub fn translate(&mut self, vline: u64, allocator: &mut PhysicalAllocator) -> u64 {
        let vpage = vline / LINES_PER_PAGE;
        let offset = vline % LINES_PER_PAGE;
        let ppage = *self
            .table
            .entry(vpage)
            .or_insert_with(|| allocator.alloc());
        ppage * LINES_PER_PAGE + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_unique() {
        let mut alloc = PhysicalAllocator::new(1 << 20, 1); // 256 pages
        let mut seen = HashSet::new();
        for _ in 0..256 {
            assert!(seen.insert(alloc.alloc()), "duplicate frame");
        }
        assert_eq!(alloc.allocated_pages(), 256);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut alloc = PhysicalAllocator::new(PAGE_BYTES, 1);
        alloc.alloc();
        alloc.alloc();
    }

    #[test]
    fn translation_is_stable_and_page_aligned() {
        let mut alloc = PhysicalAllocator::new(1 << 24, 7);
        let mut map = PageMap::new();
        let a = map.translate(0, &mut alloc);
        let b = map.translate(1, &mut alloc);
        // Same page: consecutive physical lines.
        assert_eq!(b, a + 1);
        // Repeat translation is stable.
        assert_eq!(map.translate(0, &mut alloc), a);
        assert_eq!(map.mapped_pages(), 1);
        // A different virtual page gets its own frame.
        let c = map.translate(LINES_PER_PAGE, &mut alloc);
        assert_ne!(c / LINES_PER_PAGE, a / LINES_PER_PAGE);
        assert_eq!(map.mapped_pages(), 2);
    }

    #[test]
    fn random_policy_scatters_contiguous_virtual_pages() {
        // The essence of Table I's "Random" policy: virtually-adjacent pages
        // land far apart physically (with overwhelming probability).
        let mut alloc = PhysicalAllocator::new(16 << 30, 3);
        let mut map = PageMap::new();
        let mut adjacent_pairs = 0;
        let mut prev = map.translate(0, &mut alloc) / LINES_PER_PAGE;
        for vpage in 1..512u64 {
            let ppage = map.translate(vpage * LINES_PER_PAGE, &mut alloc) / LINES_PER_PAGE;
            if ppage == prev + 1 {
                adjacent_pairs += 1;
            }
            prev = ppage;
        }
        assert!(adjacent_pairs < 4, "suspiciously sequential: {adjacent_pairs}");
    }

    #[test]
    fn separate_cores_never_share_frames() {
        let mut alloc = PhysicalAllocator::new(1 << 24, 9);
        let mut core0 = PageMap::new();
        let mut core1 = PageMap::new();
        let mut frames = HashSet::new();
        for vpage in 0..64 {
            frames.insert(core0.translate(vpage * LINES_PER_PAGE, &mut alloc) / LINES_PER_PAGE);
            frames.insert(core1.translate(vpage * LINES_PER_PAGE, &mut alloc) / LINES_PER_PAGE);
        }
        assert_eq!(frames.len(), 128);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let run = |seed| {
            let mut alloc = PhysicalAllocator::new(1 << 24, seed);
            let mut map = PageMap::new();
            (0..32)
                .map(|v| map.translate(v * LINES_PER_PAGE, &mut alloc))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
