//! Trace capture and replay.
//!
//! The paper replays recorded application traces through USIMM; this module
//! gives the reproduction the same ability: any [`RecordSource`] can be
//! captured to a compact binary file and replayed later (or traces produced
//! by external tools can be converted into this format and driven through
//! the simulator).
//!
//! # Format (`MTRC` version 1)
//!
//! ```text
//! magic   4 bytes  "MTRC"
//! version u32 LE   1
//! cores   u32 LE
//! name    u32 LE length + UTF-8 bytes
//! records repeated until EOF:
//!   core  u8
//!   flags u8          bit 0 = write
//!   gap   u32 LE
//!   line  u64 LE
//! ```

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::workload::{RecordSource, TraceRecord};

const MAGIC: &[u8; 4] = b"MTRC";
const VERSION: u32 = 1;

/// A structurally invalid trace: no cores, or a core with no records (a
/// replay stream loops, so an empty core could never make progress).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceShapeError {
    /// The trace has no cores at all.
    NoCores,
    /// `core` has no records.
    EmptyCore {
        /// Index of the record-less core.
        core: usize,
    },
}

impl fmt::Display for TraceShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceShapeError::NoCores => write!(f, "trace has no cores"),
            TraceShapeError::EmptyCore { core } => {
                write!(f, "trace core {core} has no records")
            }
        }
    }
}

impl Error for TraceShapeError {}

impl From<TraceShapeError> for io::Error {
    fn from(e: TraceShapeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Writes trace records to a stream.
///
/// A `mut` reference works anywhere a writer is required.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut sink: W, name: &str, cores: u32) -> io::Result<Self> {
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&cores.to_le_bytes())?;
        sink.write_all(&(name.len() as u32).to_le_bytes())?;
        sink.write_all(name.as_bytes())?;
        Ok(TraceWriter { sink })
    }

    /// Appends one record for `core`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn record(&mut self, core: u8, record: TraceRecord) -> io::Result<()> {
        self.sink.write_all(&[core, u8::from(record.is_write)])?;
        self.sink.write_all(&record.gap.to_le_bytes())?;
        self.sink.write_all(&record.line.to_le_bytes())?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the flush.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// A fully-loaded trace, replayable as a [`RecordSource`].
///
/// Each core's stream loops when exhausted, so a finite capture can drive
/// arbitrarily long simulations (as the paper's finite traces do).
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    per_core: Vec<Vec<TraceRecord>>,
    cursors: Vec<usize>,
}

impl RecordedTrace {
    /// Builds a trace from in-memory per-core record streams.
    ///
    /// # Errors
    ///
    /// Returns [`TraceShapeError`] if there are no cores or any core has no
    /// records.
    pub fn new(
        name: impl Into<String>,
        per_core: Vec<Vec<TraceRecord>>,
    ) -> Result<Self, TraceShapeError> {
        if per_core.is_empty() {
            return Err(TraceShapeError::NoCores);
        }
        if let Some(core) = per_core.iter().position(Vec::is_empty) {
            return Err(TraceShapeError::EmptyCore { core });
        }
        let cursors = vec![0; per_core.len()];
        Ok(RecordedTrace { name: name.into(), per_core, cursors })
    }

    /// Captures `records_per_core` records from a live source.
    ///
    /// # Errors
    ///
    /// Returns [`TraceShapeError`] if the source has no cores or
    /// `records_per_core` is zero.
    pub fn capture<S: RecordSource + ?Sized>(
        source: &mut S,
        records_per_core: usize,
    ) -> Result<Self, TraceShapeError> {
        let cores = source.num_cores();
        let per_core = (0..cores)
            .map(|core| (0..records_per_core).map(|_| source.next_record(core)).collect())
            .collect();
        RecordedTrace::new(source.name().to_owned(), per_core)
    }

    /// Reads a trace from an `MTRC` stream.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed headers or truncated records, and
    /// propagates underlying I/O errors.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Self> {
        let mut reader = BufReader::new(reader);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an MTRC trace"));
        }
        let mut word = [0u8; 4];
        reader.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        reader.read_exact(&mut word)?;
        let cores = u32::from_le_bytes(word) as usize;
        if cores == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "zero cores"));
        }
        reader.read_exact(&mut word)?;
        let name_len = u32::from_le_bytes(word) as usize;
        let mut name_bytes = vec![0u8; name_len];
        reader.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

        let mut per_core: Vec<Vec<TraceRecord>> = vec![Vec::new(); cores];
        let mut head = [0u8; 2];
        loop {
            match reader.read_exact(&mut head) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
            let core = head[0] as usize;
            if core >= cores {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("record for core {core} of {cores}"),
                ));
            }
            let mut gap = [0u8; 4];
            reader.read_exact(&mut gap)?;
            let mut line = [0u8; 8];
            reader.read_exact(&mut line)?;
            per_core[core].push(TraceRecord {
                gap: u32::from_le_bytes(gap),
                line: u64::from_le_bytes(line),
                is_write: head[1] & 1 == 1,
            });
        }
        Ok(RecordedTrace::new(name, per_core)?)
    }

    /// Writes the trace to an `MTRC` stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, sink: W) -> io::Result<()> {
        let mut writer =
            TraceWriter::new(BufWriter::new(sink), &self.name, self.per_core.len() as u32)?;
        for (core, records) in self.per_core.iter().enumerate() {
            for &record in records {
                writer.record(core as u8, record)?;
            }
        }
        writer.finish()?;
        Ok(())
    }

    /// Loads a trace file.
    ///
    /// # Errors
    ///
    /// Propagates file-open and parse errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        RecordedTrace::read_from(File::open(path)?)
    }

    /// Saves the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates file-create and write errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_to(File::create(path)?)
    }

    /// Records captured for `core`.
    #[must_use]
    pub fn len(&self, core: usize) -> usize {
        self.per_core[core].len()
    }

    /// True if the trace holds no records at all (unreachable via the
    /// constructors, which require records; useful for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_core.iter().all(Vec::is_empty)
    }
}

impl RecordSource for RecordedTrace {
    fn num_cores(&self) -> usize {
        self.per_core.len()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_record(&mut self, core: usize) -> TraceRecord {
        let records = &self.per_core[core];
        let cursor = &mut self.cursors[core];
        let record = records[*cursor % records.len()];
        *cursor += 1;
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Benchmark;
    use crate::workload::SystemWorkload;

    fn sample_trace() -> RecordedTrace {
        let bench = Benchmark::by_name("milc").unwrap();
        let mut workload = SystemWorkload::rate(bench, 2, 1 << 30, 5);
        RecordedTrace::capture(&mut workload, 100).unwrap()
    }

    #[test]
    fn capture_preserves_the_source_stream() {
        let bench = Benchmark::by_name("milc").unwrap();
        let mut live = SystemWorkload::rate(bench, 2, 1 << 30, 5);
        let mut captured = {
            let mut twin = SystemWorkload::rate(bench, 2, 1 << 30, 5);
            RecordedTrace::capture(&mut twin, 50).unwrap()
        };
        for core in 0..2 {
            for _ in 0..50 {
                assert_eq!(captured.next_record(core), live.next_record(core));
            }
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let mut loaded = RecordedTrace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.name(), "milc");
        assert_eq!(loaded.num_cores(), 2);
        let mut original = trace.clone();
        for core in 0..2 {
            assert_eq!(loaded.len(core), 100);
            for _ in 0..100 {
                assert_eq!(loaded.next_record(core), original.next_record(core));
            }
        }
    }

    #[test]
    fn replay_loops_when_exhausted() {
        let mut trace = RecordedTrace::new(
            "loop",
            vec![vec![
                TraceRecord { gap: 1, line: 10, is_write: false },
                TraceRecord { gap: 2, line: 20, is_write: true },
            ]],
        )
        .unwrap();
        let a = trace.next_record(0);
        let b = trace.next_record(0);
        let c = trace.next_record(0);
        assert_eq!(a.line, 10);
        assert_eq!(b.line, 20);
        assert_eq!(c, a, "stream loops");
    }

    #[test]
    fn rejects_bad_magic() {
        let err = RecordedTrace::read_from(&b"NOPE1234"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_records() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        // Either a clean error or a shorter stream — never a panic; the
        // format requires whole records, so this must error.
        assert!(RecordedTrace::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn rejects_record_for_unknown_core() {
        let mut bytes = Vec::new();
        {
            let mut w = TraceWriter::new(&mut bytes, "x", 1).unwrap();
            w.record(3, TraceRecord { gap: 0, line: 0, is_write: false }).unwrap();
            w.finish().unwrap();
        }
        assert!(RecordedTrace::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn rejects_empty_trace_with_typed_error() {
        assert_eq!(
            RecordedTrace::new("empty", vec![]).unwrap_err(),
            TraceShapeError::NoCores
        );
        assert_eq!(
            RecordedTrace::new("half", vec![vec![], vec![]]).unwrap_err(),
            TraceShapeError::EmptyCore { core: 0 }
        );
    }

    #[test]
    fn read_from_surfaces_shape_errors_as_invalid_data() {
        let mut bytes = Vec::new();
        // A valid header for two cores, followed by records for core 0 only.
        let mut w = TraceWriter::new(&mut bytes, "onecore", 2).unwrap();
        w.record(0, TraceRecord { gap: 0, line: 1, is_write: false }).unwrap();
        w.finish().unwrap();
        let err = RecordedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("core 1"), "{err}");
    }
}
