//! Per-core trace generation: rate mode and mixed workloads.
//!
//! Each core produces a stream of [`TraceRecord`]s — the post-LLC memory
//! accesses the paper replays through USIMM — with the benchmark's
//! read/write intensity, footprint, and access-pattern class, translated
//! to physical addresses through a per-core page table over a shared
//! randomly-allocating physical memory (Table I).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::catalog::{Benchmark, Mix};
use crate::page::{PageMap, PhysicalAllocator};
use crate::pattern::PatternState;
use crate::CACHELINE_BYTES;

/// Default footprint scale-down: we simulate millions rather than billions
/// of instructions, so footprints are divided by this factor (documented in
/// EXPERIMENTS.md; relative footprint ordering across benchmarks is
/// preserved).
pub const DEFAULT_FOOTPRINT_DIVISOR: u64 = 16;

/// Smallest simulated per-core footprint (lines of a 4 MiB region) so that
/// even tiny-footprint benchmarks exercise the counter hierarchy.
pub const MIN_FOOTPRINT_BYTES: u64 = 4 << 20;

/// Consecutive writes a core issues to one line before moving on (write
/// runs from read-modify-write sequences and store buffers). Bursts let
/// resident counter lines absorb several increments per cache residency,
/// attenuating write propagation up the tree as larger caches do.
pub const WRITE_BURST: u32 = 16;

/// Anything that can feed per-core memory-access records to the simulator:
/// live synthetic workloads ([`SystemWorkload`]) or recorded traces
/// ([`crate::io::RecordedTrace`]).
pub trait RecordSource {
    /// Number of cores the source feeds.
    fn num_cores(&self) -> usize;
    /// Display name of the workload.
    fn name(&self) -> &str;
    /// Produces the next record for `core`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `core` is out of range.
    fn next_record(&mut self, core: usize) -> TraceRecord;
}

/// One memory access produced by a core, together with the number of
/// non-memory instructions preceding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions retired before this access.
    pub gap: u32,
    /// Physical data-line index.
    pub line: u64,
    /// Write (a dirty LLC eviction) or read (an LLC miss).
    pub is_write: bool,
}

#[derive(Debug)]
struct CoreState {
    bench: &'static Benchmark,
    pattern: PatternState,
    pages: PageMap,
    rng: SmallRng,
    mean_gap: f64,
    write_fraction: f64,
    /// Cyclic cursor over the write working set (see
    /// [`Benchmark::write_sweep_fraction`]).
    write_cursor: u64,
    /// Cyclic cursor over the hot write lines (see
    /// [`Benchmark::write_hot_fraction`]).
    hot_cursor: u64,
    /// Remaining writes in the current sweep burst.
    sweep_burst: u32,
    /// Remaining writes in the current hot burst.
    hot_burst: u32,
}

impl CoreState {
    fn new(bench: &'static Benchmark, footprint_lines: u64, seed: u64) -> Self {
        let total_pki = bench.total_pki();
        // Instructions per memory access, minus the access itself.
        let mean_gap = (1000.0 / total_pki - 1.0).max(0.0);
        CoreState {
            bench,
            pattern: PatternState::new(bench.pattern, footprint_lines),
            pages: PageMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            mean_gap,
            write_fraction: bench.write_fraction(),
            write_cursor: 0,
            hot_cursor: 0,
            sweep_burst: 0,
            hot_burst: 0,
        }
    }

    fn next(&mut self, allocator: &mut PhysicalAllocator) -> TraceRecord {
        // Exponentially-distributed instruction gaps give the bursty
        // arrivals a Poisson-like miss stream has.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = (-self.mean_gap * u.ln()).round() as u32;
        let mut vline = self.pattern.next_line(&mut self.rng);
        let is_write = self.rng.gen_bool(self.write_fraction);
        if is_write {
            vline = self.next_write_line(vline);
        }
        let line = self.pages.translate(vline, allocator);
        TraceRecord { gap, line, is_write }
    }

    /// Maps a write onto the benchmark's write working set: a
    /// `write_set_fraction`-sized subset of the footprint, scattered across
    /// it by a fixed permutation. Irregular applications write far fewer
    /// distinct lines than they read (that is what makes their counter
    /// usage sparse, §III-A), and most of their updates recur cyclically
    /// over that set (logs, queues, repeatedly-traversed arrays) — the
    /// recurrence structure rebasing exploits (§IV).
    fn next_write_line(&mut self, vline: u64) -> u64 {
        let fraction = self.bench.write_set_fraction;
        if fraction >= 1.0 {
            return vline;
        }
        let _ = vline;
        let n = self.pattern.footprint_lines();
        let write_lines = ((n as f64 * fraction) as u64).max(1);
        let hot_lines = (write_lines >> 14).max(8).min(write_lines);
        let r: f64 = self.rng.gen();
        let idx = if r < self.bench.write_sweep_fraction {
            // Cyclic sweep over the whole write working set, in bursts of
            // WRITE_BURST repeated writes per line (read-modify-write runs).
            if self.sweep_burst == 0 {
                self.sweep_burst = WRITE_BURST;
                self.write_cursor = (self.write_cursor + 1) % write_lines;
            }
            self.sweep_burst -= 1;
            self.write_cursor
        } else if r < self.bench.write_sweep_fraction + self.bench.write_hot_fraction {
            // Hot write lines: a tiny slice of the write set absorbs a
            // large share of the writes, visited cyclically in bursts.
            if self.hot_burst == 0 {
                self.hot_burst = WRITE_BURST;
                self.hot_cursor = (self.hot_cursor + 1) % hot_lines;
            }
            self.hot_burst -= 1;
            self.hot_cursor
        } else {
            // Temporally unstructured update anywhere in the write set.
            self.rng.gen_range(0..write_lines)
        };
        // Fixed permutation scatters the write set across the footprint
        // (and thus across pages and counter lines) while preserving the
        // cyclic visit order.
        idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(27)
            .wrapping_mul(0x94d0_49bb_1331_11eb)
            % n
    }
}

/// A multi-core workload: N cores in rate mode (all running the same
/// benchmark) or a 4-way mix, sharing one physical memory.
#[derive(Debug)]
pub struct SystemWorkload {
    name: String,
    allocator: PhysicalAllocator,
    cores: Vec<CoreState>,
}

impl SystemWorkload {
    /// Rate mode: `cores` copies of `bench` over `memory_bytes` of physical
    /// memory (§VI: "each of the four cores running the same copy of the
    /// benchmark").
    #[must_use]
    pub fn rate(bench: &'static Benchmark, cores: usize, memory_bytes: u64, seed: u64) -> Self {
        Self::rate_scaled(bench, cores, memory_bytes, seed, DEFAULT_FOOTPRINT_DIVISOR)
    }

    /// Rate mode with an explicit footprint divisor (1 = the full Table II
    /// footprint).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the scaled footprints exceed physical
    /// memory.
    #[must_use]
    pub fn rate_scaled(
        bench: &'static Benchmark,
        cores: usize,
        memory_bytes: u64,
        seed: u64,
        footprint_divisor: u64,
    ) -> Self {
        assert!(cores > 0, "at least one core");
        let benches = vec![bench; cores];
        Self::build(bench.name.to_owned(), &benches, memory_bytes, seed, footprint_divisor)
    }

    /// A 4-core mixed workload.
    #[must_use]
    pub fn mix(mix: &Mix, memory_bytes: u64, seed: u64) -> Self {
        let benches = mix.benchmarks();
        Self::build(
            mix.name.to_owned(),
            &benches,
            memory_bytes,
            seed,
            DEFAULT_FOOTPRINT_DIVISOR,
        )
    }

    fn build(
        name: String,
        benches: &[&'static Benchmark],
        memory_bytes: u64,
        seed: u64,
        footprint_divisor: u64,
    ) -> Self {
        assert!(footprint_divisor >= 1, "divisor must be positive");
        let mut total_footprint = 0u64;
        let cores: Vec<CoreState> = benches
            .iter()
            .enumerate()
            .map(|(i, bench)| {
                let bytes = (bench.footprint_per_core_bytes() / footprint_divisor)
                    .max(MIN_FOOTPRINT_BYTES);
                total_footprint += bytes;
                let lines = bytes / CACHELINE_BYTES;
                CoreState::new(bench, lines, seed.wrapping_add(i as u64 * 0x9e37))
            })
            .collect();
        assert!(
            total_footprint <= memory_bytes,
            "scaled footprints ({total_footprint} B) exceed physical memory"
        );
        SystemWorkload {
            name,
            allocator: PhysicalAllocator::new(memory_bytes, seed),
            cores,
        }
    }

    /// Workload display name (benchmark or mix name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The benchmark core `core` runs.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn benchmark(&self, core: usize) -> &'static Benchmark {
        self.cores[core].bench
    }

    /// Produces the next trace record for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn next_record(&mut self, core: usize) -> TraceRecord {
        self.cores[core].next(&mut self.allocator)
    }

    /// Simulated per-core footprint in lines.
    #[must_use]
    pub fn footprint_lines(&self, core: usize) -> u64 {
        self.cores[core].pattern.footprint_lines()
    }
}

impl RecordSource for SystemWorkload {
    fn num_cores(&self) -> usize {
        SystemWorkload::num_cores(self)
    }

    fn name(&self) -> &str {
        SystemWorkload::name(self)
    }

    fn next_record(&mut self, core: usize) -> TraceRecord {
        SystemWorkload::next_record(self, core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MIXES;

    const GIB: u64 = 1 << 30;

    fn bench(name: &str) -> &'static Benchmark {
        Benchmark::by_name(name).unwrap()
    }

    #[test]
    fn rate_mode_runs_same_benchmark_on_all_cores() {
        let w = SystemWorkload::rate(bench("mcf"), 4, 16 * GIB, 1);
        assert_eq!(w.num_cores(), 4);
        for core in 0..4 {
            assert_eq!(w.benchmark(core).name, "mcf");
        }
    }

    #[test]
    fn mix_assigns_members_in_order() {
        let w = SystemWorkload::mix(&MIXES[0], 16 * GIB, 1);
        assert_eq!(w.name(), "mix1");
        assert_eq!(w.benchmark(0).name, "mcf");
        assert_eq!(w.benchmark(1).name, "libquantum");
    }

    #[test]
    fn records_stay_in_physical_range() {
        let mut w = SystemWorkload::rate(bench("pr-twit"), 4, 16 * GIB, 3);
        for core in 0..4 {
            for _ in 0..2_000 {
                let r = w.next_record(core);
                assert!(r.line < 16 * GIB / 64);
            }
        }
    }

    #[test]
    fn write_fraction_tracks_table2() {
        // gcc: 53 writes vs 48 reads per kilo-instruction.
        let mut w = SystemWorkload::rate(bench("gcc"), 1, 16 * GIB, 5);
        let writes = (0..20_000).filter(|_| w.next_record(0).is_write).count();
        let fraction = writes as f64 / 20_000.0;
        let expect = 53.0 / 101.0;
        assert!((fraction - expect).abs() < 0.02, "fraction {fraction}");
    }

    #[test]
    fn gaps_track_memory_intensity() {
        // mcf: 71 accesses/kilo-instr -> mean gap ~ 13; dealII: 2.2/kilo ->
        // mean gap ~ 453.
        let mean_gap = |name: &str| {
            let mut w = SystemWorkload::rate(bench(name), 1, 16 * GIB, 7);
            let total: u64 = (0..10_000).map(|_| w.next_record(0).gap as u64).sum();
            total as f64 / 10_000.0
        };
        let mcf = mean_gap("mcf");
        let dealii = mean_gap("dealII");
        assert!((10.0..18.0).contains(&mcf), "mcf mean gap {mcf}");
        assert!((380.0..530.0).contains(&dealii), "dealII mean gap {dealii}");
    }

    #[test]
    fn cores_use_disjoint_physical_pages() {
        let mut w = SystemWorkload::rate(bench("libquantum"), 4, 16 * GIB, 11);
        let mut per_core_pages: Vec<std::collections::HashSet<u64>> =
            vec![std::collections::HashSet::new(); 4];
        for (core, pages) in per_core_pages.iter_mut().enumerate() {
            for _ in 0..5_000 {
                let r = w.next_record(core);
                pages.insert(r.line / 64);
            }
        }
        for a in 0..4 {
            for b in a + 1..4 {
                assert!(
                    per_core_pages[a].is_disjoint(&per_core_pages[b]),
                    "cores {a} and {b} share pages"
                );
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let collect = |seed| {
            let mut w = SystemWorkload::rate(bench("milc"), 2, 16 * GIB, seed);
            (0..100).map(|i| w.next_record(i % 2)).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn footprint_scaling_applies_floor() {
        let w = SystemWorkload::rate(bench("libquantum"), 4, 16 * GIB, 1);
        // 0.1 GB / 4 cores / 16 < 4 MiB floor.
        assert_eq!(w.footprint_lines(0), MIN_FOOTPRINT_BYTES / 64);
        let big = SystemWorkload::rate(bench("pr-web"), 4, 16 * GIB, 1);
        assert!(big.footprint_lines(0) > w.footprint_lines(0));
    }

    #[test]
    #[should_panic(expected = "exceed physical memory")]
    fn rejects_oversized_footprints() {
        let _ = SystemWorkload::rate_scaled(bench("pr-web"), 4, GIB, 1, 1);
    }

    #[test]
    fn writes_stay_within_the_write_working_set() {
        // mcf writes only 15% of its footprint; reads cover it all.
        let mut w = SystemWorkload::rate(bench("mcf"), 1, 16 * GIB, 21);
        let mut write_lines = std::collections::HashSet::new();
        let mut read_lines = std::collections::HashSet::new();
        for _ in 0..60_000 {
            let r = w.next_record(0);
            if r.is_write {
                write_lines.insert(r.line);
            } else {
                read_lines.insert(r.line);
            }
        }
        // Writes revisit a bounded set of distinct lines even though reads
        // scatter: the distinct-write set is far smaller than a same-sized
        // sample of reads would be.
        let writes = write_lines.len() as f64;
        let reads = read_lines.len() as f64;
        assert!(writes < reads, "writes {writes} !< reads {reads}");

        // Streaming benchmarks write their whole footprint: distinct write
        // lines keep growing with the trace.
        let mut s = SystemWorkload::rate(bench("lbm"), 1, 16 * GIB, 21);
        let mut stream_writes = std::collections::HashSet::new();
        for _ in 0..60_000 {
            let r = s.next_record(0);
            if r.is_write {
                stream_writes.insert(r.line);
            }
        }
        assert!(stream_writes.len() > 20_000, "{}", stream_writes.len());
    }

    #[test]
    fn workloads_are_send() {
        // The parallel sweep engine in `morphtree-experiments` builds a
        // `SystemWorkload` per worker thread; everything here must be
        // owned data with no hidden shared state.
        fn assert_send<T: Send>() {}
        assert_send::<SystemWorkload>();
        assert_send::<crate::io::RecordedTrace>();
        assert_send::<TraceRecord>();
    }
}
