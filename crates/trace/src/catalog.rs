//! The Table II benchmark catalog.
//!
//! Read/write memory intensities (accesses per kilo-instruction, per core)
//! and four-core footprints are copied from Table II of the paper. The
//! access-pattern class per benchmark is our modeling choice, guided by the
//! paper's own characterization (§III-A, §VII-A: mcf/omnetpp/xalancbmk are
//! "random data accesses", libquantum/gcc/lbm are "streaming",
//! GemsFDTD is "neither sparse nor uniform", GAP workloads perform "random
//! accesses across large working sets").

use crate::pattern::PatternKind;

/// Which suite a benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// The GAP graph-analytics benchmark suite.
    Gap,
}

/// One benchmark of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// Benchmark name as printed in the paper's figures.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Memory reads per kilo-instruction per core (Table II).
    pub read_pki: f64,
    /// Memory writes per kilo-instruction per core (Table II).
    pub write_pki: f64,
    /// Four-core memory footprint in gigabytes (Table II).
    pub footprint_gb: f64,
    /// Spatial access-pattern class (our modeling choice).
    pub pattern: PatternKind,
    /// Fraction of the footprint that ever receives writes (our modeling
    /// choice). Irregular applications write small, scattered subsets of
    /// what they read — the source of the sparse counter usage the paper's
    /// Fig 7 measures; streaming applications write their whole footprint.
    pub write_set_fraction: f64,
    /// Probability that a write advances a cyclic sweep over the write
    /// working set rather than jumping randomly within it (our modeling
    /// choice). Real applications update logs, queues and arrays with
    /// strong cyclic recurrence; values near 0 model the temporally
    /// unstructured updates that defeat rebasing (the paper's GemsFDTD
    /// pathology, §IV-3).
    pub write_sweep_fraction: f64,
    /// Probability that a write lands on one of a small set of *hot* lines
    /// (≈ 0.1% of the write set, scattered across the footprint). Hot
    /// write lines are what drive encryption-counter overflows in
    /// irregular applications — the regime where ZCC's wide counters beat
    /// SC-64's fixed 6-bit minors (Fig 10/11).
    pub write_hot_fraction: f64,
}

impl Benchmark {
    /// Footprint per core in bytes (Table II footprints are for 4 cores in
    /// rate mode).
    #[must_use]
    pub fn footprint_per_core_bytes(&self) -> u64 {
        (self.footprint_gb / 4.0 * (1u64 << 30) as f64) as u64
    }

    /// Total memory accesses per kilo-instruction.
    #[must_use]
    pub fn total_pki(&self) -> f64 {
        self.read_pki + self.write_pki
    }

    /// Fraction of memory accesses that are writes.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        self.write_pki / self.total_pki()
    }

    /// Looks a benchmark up by its Table II name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<&'static Benchmark> {
        ALL.iter().find(|b| b.name == name)
    }

    /// All 22 benchmarks in Table II order.
    #[must_use]
    pub fn all() -> &'static [Benchmark] {
        &ALL
    }

    /// The 16 SPEC2006 benchmarks.
    #[must_use]
    pub fn spec() -> &'static [Benchmark] {
        &ALL[..16]
    }

    /// The 6 GAP benchmarks.
    #[must_use]
    pub fn gap() -> &'static [Benchmark] {
        &ALL[16..]
    }
}

#[allow(clippy::too_many_arguments)]
const fn spec(
    name: &'static str,
    read_pki: f64,
    write_pki: f64,
    footprint_gb: f64,
    pattern: PatternKind,
    write_set_fraction: f64,
    write_sweep_fraction: f64,
    write_hot_fraction: f64,
) -> Benchmark {
    Benchmark {
        name,
        suite: Suite::Spec2006,
        read_pki,
        write_pki,
        footprint_gb,
        pattern,
        write_set_fraction,
        write_sweep_fraction,
        write_hot_fraction,
    }
}

#[allow(clippy::too_many_arguments)]
const fn gap(
    name: &'static str,
    read_pki: f64,
    write_pki: f64,
    footprint_gb: f64,
    pattern: PatternKind,
    write_set_fraction: f64,
    write_sweep_fraction: f64,
    write_hot_fraction: f64,
) -> Benchmark {
    Benchmark {
        name,
        suite: Suite::Gap,
        read_pki,
        write_pki,
        footprint_gb,
        pattern,
        write_set_fraction,
        write_sweep_fraction,
        write_hot_fraction,
    }
}

/// Table II, with per-benchmark pattern classes.
static ALL: [Benchmark; 22] = [
    spec("mcf", 69.0, 2.0, 7.5, PatternKind::UniformRandom, 0.15, 0.45, 0.45),
    spec("omnetpp", 18.0, 9.0, 0.6, PatternKind::UniformRandom, 0.20, 0.40, 0.45),
    spec("xalancbmk", 4.0, 3.0, 1.1, PatternKind::HotSet { hot_fraction: 0.10, hot_probability: 0.85 }, 0.15, 0.35, 0.50),
    spec("GemsFDTD", 19.0, 8.0, 3.1, PatternKind::Mixed { streaming_fraction: 0.5 }, 0.50, 0.10, 0.05),
    spec("milc", 19.0, 7.0, 2.3, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("soplex", 28.0, 6.0, 1.0, PatternKind::Mixed { streaming_fraction: 0.6 }, 0.35, 0.45, 0.25),
    spec("bzip2", 5.0, 1.4, 1.2, PatternKind::Mixed { streaming_fraction: 0.7 }, 0.40, 0.50, 0.25),
    spec("zeusmp", 5.0, 1.9, 1.9, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("sphinx", 14.0, 1.4, 0.1, PatternKind::HotSet { hot_fraction: 0.20, hot_probability: 0.80 }, 0.20, 0.40, 0.40),
    spec("leslie3d", 16.0, 5.0, 0.3, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("libquantum", 24.0, 10.0, 0.1, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("gcc", 48.0, 53.0, 0.7, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("lbm", 28.0, 21.0, 1.6, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("wrf", 4.0, 2.0, 1.6, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("cactusADM", 5.0, 1.5, 1.6, PatternKind::Streaming, 1.0, 1.0, 0.00),
    spec("dealII", 1.7, 0.5, 0.2, PatternKind::HotSet { hot_fraction: 0.10, hot_probability: 0.80 }, 0.20, 0.40, 0.40),
    gap("bc-twit", 61.0, 24.0, 9.3, PatternKind::PowerLaw { skew: 2.5 }, 0.20, 0.40, 0.45),
    gap("pr-twit", 94.0, 4.0, 11.2, PatternKind::PowerLaw { skew: 2.5 }, 0.20, 0.45, 0.45),
    gap("cc-twit", 89.0, 7.0, 7.0, PatternKind::PowerLaw { skew: 2.5 }, 0.20, 0.40, 0.45),
    gap("bc-web", 13.0, 7.0, 12.0, PatternKind::PowerLaw { skew: 2.0 }, 0.15, 0.50, 0.30),
    gap("pr-web", 16.0, 3.0, 12.2, PatternKind::PowerLaw { skew: 2.0 }, 0.15, 0.55, 0.30),
    gap("cc-web", 9.0, 1.5, 7.8, PatternKind::PowerLaw { skew: 2.0 }, 0.15, 0.55, 0.30),
];

/// A four-core mixed workload (§VI: "6 mixed workloads obtained with a
/// random combination of benchmarks").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Mix name (mix1..mix6).
    pub name: &'static str,
    /// The benchmark each of the four cores runs.
    pub members: [&'static str; 4],
}

/// The six mixes evaluated in Fig 15/16 (the paper does not list its random
/// combinations; these are a fixed, seed-stable choice spanning the
/// pattern classes).
pub static MIXES: [Mix; 6] = [
    Mix { name: "mix1", members: ["mcf", "libquantum", "omnetpp", "gcc"] },
    Mix { name: "mix2", members: ["xalancbmk", "lbm", "soplex", "milc"] },
    Mix { name: "mix3", members: ["GemsFDTD", "sphinx", "bzip2", "leslie3d"] },
    Mix { name: "mix4", members: ["mcf", "gcc", "zeusmp", "dealII"] },
    Mix { name: "mix5", members: ["omnetpp", "cactusADM", "wrf", "libquantum"] },
    Mix { name: "mix6", members: ["soplex", "lbm", "xalancbmk", "bc-twit"] },
];

impl Mix {
    /// Resolves the member benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if a member name is not in the catalog (impossible for the
    /// built-in mixes).
    #[must_use]
    pub fn benchmarks(&self) -> [&'static Benchmark; 4] {
        // Mix members are compile-time catalog names, cross-checked by the
        // `mixes_resolve` test; a miss is a catalog edit gone wrong and
        // must fail loudly.
        #[allow(clippy::expect_used)]
        self.members
            .map(|name| Benchmark::by_name(name).expect("mix member in catalog"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_22_benchmarks() {
        assert_eq!(Benchmark::all().len(), 22);
        assert_eq!(Benchmark::spec().len(), 16);
        assert_eq!(Benchmark::gap().len(), 6);
        assert!(Benchmark::spec().iter().all(|b| b.suite == Suite::Spec2006));
        assert!(Benchmark::gap().iter().all(|b| b.suite == Suite::Gap));
    }

    #[test]
    fn table2_spot_checks() {
        let mcf = Benchmark::by_name("mcf").unwrap();
        assert_eq!(mcf.read_pki, 69.0);
        assert_eq!(mcf.write_pki, 2.0);
        assert_eq!(mcf.footprint_gb, 7.5);

        let gcc = Benchmark::by_name("gcc").unwrap();
        assert_eq!(gcc.write_pki, 53.0);
        assert!(gcc.write_fraction() > 0.5, "gcc is write-heavy");

        let prweb = Benchmark::by_name("pr-web").unwrap();
        assert_eq!(prweb.footprint_gb, 12.2);
    }

    #[test]
    fn per_core_footprint_divides_by_four() {
        let libq = Benchmark::by_name("libquantum").unwrap();
        let per_core = libq.footprint_per_core_bytes();
        assert_eq!(per_core, (0.1 / 4.0 * (1u64 << 30) as f64) as u64);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Benchmark::by_name("nonexistent").is_none());
    }

    #[test]
    fn write_set_fractions_are_valid() {
        for b in Benchmark::all() {
            assert!(
                b.write_set_fraction > 0.0 && b.write_set_fraction <= 1.0,
                "{}",
                b.name
            );
        }
        // Streaming benchmarks write everything; irregular ones a subset.
        assert_eq!(Benchmark::by_name("lbm").unwrap().write_set_fraction, 1.0);
        assert!(Benchmark::by_name("mcf").unwrap().write_set_fraction < 0.25);
    }

    #[test]
    fn all_memory_intensive() {
        // §VI: focus on workloads with > 1 access per 1000 instructions.
        for b in Benchmark::all() {
            assert!(b.total_pki() > 1.0, "{}", b.name);
            assert!(b.write_pki > 0.0, "{}", b.name);
        }
    }

    #[test]
    fn mixes_resolve() {
        assert_eq!(MIXES.len(), 6);
        for mix in &MIXES {
            let members = mix.benchmarks();
            assert_eq!(members.len(), 4);
        }
    }
}
