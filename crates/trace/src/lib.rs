//! Synthetic workload substrate for the morphtree reproduction.
//!
//! The paper evaluates 22 memory-intensive workloads from SPEC2006 and GAP
//! plus 6 mixes (Table II), replayed through USIMM as post-LLC memory-access
//! traces. We reproduce that substrate synthetically: each benchmark is
//! described by its measured read/write memory intensity (accesses per kilo
//! instruction), its footprint, and an access-pattern class — the three
//! statistics the paper's own analysis (§III-A) attributes counter-overflow
//! behaviour to.
//!
//! - [`catalog`] — the Table II benchmark catalog with per-benchmark
//!   pattern classes and the 6 mixes.
//! - [`pattern`] — access-pattern generators (streaming, uniform-random,
//!   hot-set, power-law graph, mixed).
//! - [`page`] — the OS page allocator with the *random* allocation policy
//!   of Table I, which is what interleaves hot and cold pages in physical
//!   memory and produces the sparse tree-counter usage of Fig 7.
//! - [`workload`] — per-core trace generation (rate mode and mixes).
//!
//! # Example
//!
//! ```
//! use morphtree_trace::catalog::Benchmark;
//! use morphtree_trace::workload::SystemWorkload;
//!
//! let mcf = Benchmark::by_name("mcf").unwrap();
//! let mut workload = SystemWorkload::rate(mcf, 4, 16 << 30, 42);
//! let record = workload.next_record(0);
//! assert!(record.line < (16u64 << 30) / 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod io;
pub mod page;
pub mod pattern;
pub mod workload;

pub use catalog::{Benchmark, Mix, Suite};
pub use io::RecordedTrace;
pub use workload::{RecordSource, SystemWorkload, TraceRecord};

/// Cacheline size in bytes (the memory-access granularity).
pub const CACHELINE_BYTES: u64 = 64;

/// Page size in bytes (Table I systems use 4 KB pages).
pub const PAGE_BYTES: u64 = 4096;

/// Cachelines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / CACHELINE_BYTES;
