//! Golden-file pinning of the `MTRC` trace format.
//!
//! The checked-in fixture (`tests/data/milc-2core-seed5.mtrc`) was captured
//! from `milc` on 2 cores over 1 GB with seed 5, 48 records per core. The
//! suite asserts three things against it:
//!
//! 1. the on-disk layout matches the documented format byte for byte
//!    (magic/version/header fields at fixed offsets, 14-byte records);
//! 2. re-capturing the same workload reproduces the fixture *exactly* —
//!    any drift in the serializer or the synthetic-trace RNG fails here;
//! 3. replaying the fixture yields the same record stream as the live
//!    source it was captured from.
//!
//! If a deliberate format change lands, regenerate with
//! `cargo test -p morphtree-trace --test golden_mtrc -- --ignored`.

use morphtree_trace::catalog::Benchmark;
use morphtree_trace::io::RecordedTrace;
use morphtree_trace::workload::{RecordSource, SystemWorkload};

const FIXTURE_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/milc-2core-seed5.mtrc");
const CORES: usize = 2;
const RECORDS_PER_CORE: usize = 48;
/// Header: magic (4) + version (4) + cores (4) + name len (4) + "milc" (4).
const HEADER_BYTES: usize = 20;
/// Record: core (1) + flags (1) + gap (4) + line (8).
const RECORD_BYTES: usize = 14;

fn live_workload() -> SystemWorkload {
    SystemWorkload::rate(Benchmark::by_name("milc").unwrap(), CORES, 1 << 30, 5)
}

fn fixture() -> Vec<u8> {
    std::fs::read(FIXTURE_PATH)
        .unwrap_or_else(|e| panic!("missing fixture {FIXTURE_PATH}: {e}"))
}

#[test]
fn header_layout_matches_the_spec() {
    let bytes = fixture();
    assert_eq!(&bytes[0..4], b"MTRC", "magic");
    assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1, "version");
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), CORES as u32);
    assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 4, "name length");
    assert_eq!(&bytes[16..20], b"milc");
    assert_eq!(bytes.len(), HEADER_BYTES + CORES * RECORDS_PER_CORE * RECORD_BYTES);
}

#[test]
fn capture_reproduces_the_fixture_byte_for_byte() {
    let trace = RecordedTrace::capture(&mut live_workload(), RECORDS_PER_CORE).unwrap();
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).unwrap();
    assert_eq!(
        bytes,
        fixture(),
        "MTRC byte stream changed: serializer or trace-RNG drift \
         (regenerate the fixture only for a deliberate format change)"
    );
}

#[test]
fn replayed_fixture_matches_the_live_source() {
    let mut replay = RecordedTrace::load(FIXTURE_PATH).unwrap();
    assert_eq!(replay.name(), "milc");
    assert_eq!(replay.num_cores(), CORES);
    for core in 0..CORES {
        assert_eq!(replay.len(core), RECORDS_PER_CORE);
    }

    let mut live = live_workload();
    for core in 0..CORES {
        for i in 0..RECORDS_PER_CORE {
            assert_eq!(
                RecordSource::next_record(&mut replay, core),
                live.next_record(core),
                "record {i} of core {core} diverged"
            );
        }
    }
}

/// Regenerates the fixture; run explicitly after a deliberate format change
/// (`cargo test -p morphtree-trace --test golden_mtrc -- --ignored`).
#[test]
#[ignore = "writes tests/data/milc-2core-seed5.mtrc"]
fn regenerate_fixture() {
    let trace = RecordedTrace::capture(&mut live_workload(), RECORDS_PER_CORE).unwrap();
    trace.save(FIXTURE_PATH).unwrap();
}
