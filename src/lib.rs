//! Umbrella crate for the `morphtree` reproduction repository.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the member crates:
//!
//! - [`morphtree_crypto`] — AES-128, SipHash-2-4 MAC, counter-mode OTP.
//! - [`morphtree_core`] — counter representations, integrity trees, the
//!   metadata engine, and the functional secure memory.
//! - [`morphtree_trace`] — synthetic workload generators and the benchmark
//!   catalog (Table II).
//! - [`morphtree_sim`] — DDR3 timing/power model, core model, full-system
//!   secure-memory simulator.

pub use morphtree_core as core;
pub use morphtree_crypto as crypto;
pub use morphtree_sim as sim;
pub use morphtree_trace as trace;
